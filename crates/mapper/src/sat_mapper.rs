//! The SAT modulo-scheduling mapper: an exact-style backend that encodes
//! schedule, placement and routing as CNF and decides each candidate II
//! with the `panorama-sat` CDCL solver.
//!
//! Per candidate II (ascending from the proven MII floor), the mapper
//! runs the two-phase loop of [`sat_encode`](crate::sat_encode): solve
//! the schedule + placement CNF, cut distance-infeasible placements
//! (CEGAR), then route the decoded assignment over the time-expanded
//! MRRG with a second CNF; a routing refutation blocks that exact
//! assignment and re-solves phase 1. Every accepted mapping is re-checked
//! with [`Mapping::verify`] before it is returned — the solver is trusted
//! for search, never for correctness.
//!
//! Determinism: the CNF construction iterates sorted structures only and
//! the solver is deterministic, so the mapper returns byte-identical
//! mappings for identical inputs regardless of thread count. Cooperative
//! cancellation is polled inside unit propagation (every few thousand
//! propagations) and at restart boundaries via the solver's interrupt
//! hook.

use crate::sat_encode::{BuildError, CnfBudget, RoutingCnf, ScheduleCnf};
use crate::{
    min_ii, LowerLevelMapper, MapError, Mapping, MappingStats, Restriction, SearchControl,
};
use panorama_arch::Cgra;
use panorama_dfg::Dfg;
use panorama_sat::{Limits, SolveResult, SolverStats};
use panorama_trace::SpanCollector;
use std::sync::Mutex;
use std::time::Instant;

/// Tunables for the SAT mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatMapperConfig {
    /// Refuse DFGs larger than this (CNF size grows superlinearly).
    pub max_ops: usize,
    /// II ceiling as `mii * factor + offset`.
    pub max_ii_factor: usize,
    /// Absolute offset on the II ceiling.
    pub max_ii_offset: usize,
    /// Schedule-window widths to try per II, in units of II (ascending;
    /// a wider window re-encodes only after the narrow one is refuted).
    pub window_factors: Vec<usize>,
    /// Variable budget per CNF (phase 1 and phase 2 each).
    pub max_vars: usize,
    /// Clause budget per CNF.
    pub max_clauses: usize,
    /// Conflict budget per phase-1 solve.
    pub schedule_conflicts: u64,
    /// Conflict budget per phase-2 solve.
    pub route_conflicts: u64,
    /// CEGAR refinement rounds per window width before giving up on
    /// the II.
    pub refine_rounds: usize,
}

impl Default for SatMapperConfig {
    fn default() -> Self {
        SatMapperConfig {
            max_ops: 72,
            max_ii_factor: 3,
            max_ii_offset: 6,
            window_factors: vec![2, 4],
            max_vars: 200_000,
            max_clauses: 2_000_000,
            schedule_conflicts: 30_000,
            route_conflicts: 30_000,
            refine_rounds: 48,
        }
    }
}

/// Outcome record for one candidate II, kept for `--sat-report`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IiAttempt {
    /// The candidate II.
    pub ii: usize,
    /// `"mapped"`, `"unsat"`, `"budget"`, `"timeout"` or `"cancelled"`.
    pub result: &'static str,
    /// CEGAR rounds spent (distance cuts + routing refutations).
    pub refinements: usize,
    /// Models whose decode or [`Mapping::verify`] re-check failed; always
    /// 0 unless the encoder and verifier disagree (lint `SAT003`).
    pub decode_mismatches: usize,
    /// Peak variable count over both phases.
    pub vars: usize,
    /// Peak clause count over both phases.
    pub clauses: usize,
    /// Solver conflicts summed over every solve at this II.
    pub conflicts: u64,
    /// Solver propagations summed over every solve at this II.
    pub propagations: u64,
    /// Solver decisions summed over every solve at this II.
    pub decisions: u64,
    /// Solver restarts summed over every solve at this II.
    pub restarts: u64,
}

impl IiAttempt {
    fn new(ii: usize) -> Self {
        IiAttempt {
            ii,
            result: "unsat",
            refinements: 0,
            decode_mismatches: 0,
            vars: 0,
            clauses: 0,
            conflicts: 0,
            propagations: 0,
            decisions: 0,
            restarts: 0,
        }
    }

    fn absorb(&mut self, before: SolverStats, after: SolverStats) {
        self.conflicts += after.conflicts - before.conflicts;
        self.propagations += after.propagations - before.propagations;
        self.decisions += after.decisions - before.decisions;
        self.restarts += after.restarts - before.restarts;
    }
}

enum Outcome {
    Mapped(Mapping),
    Unsat,
    Budget,
    Timeout,
    Cancelled,
}

/// The SAT modulo-scheduling mapper.
#[derive(Debug, Default)]
pub struct SatMapper {
    /// Mapper configuration.
    pub config: SatMapperConfig,
    attempts: Mutex<Vec<IiAttempt>>,
}

impl Clone for SatMapper {
    fn clone(&self) -> Self {
        SatMapper {
            config: self.config.clone(),
            attempts: Mutex::new(Vec::new()),
        }
    }
}

impl SatMapper {
    /// Creates a mapper with custom settings.
    pub fn new(config: SatMapperConfig) -> Self {
        SatMapper {
            config,
            attempts: Mutex::new(Vec::new()),
        }
    }

    /// Drains the per-II attempt log accumulated since the last call.
    /// Under the portfolio several candidates may interleave their
    /// attempts; entries are returned sorted by `(ii, result)` so the
    /// log's content is a deterministic function of the work performed.
    pub fn take_attempts(&self) -> Vec<IiAttempt> {
        let mut a = std::mem::take(&mut *self.attempts.lock().expect("attempt log poisoned"));
        a.sort_by(|x, y| (x.ii, x.result).cmp(&(y.ii, y.result)));
        a
    }

    /// One candidate II: the phase-1/phase-2 CEGAR loop.
    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
        hops: &[Vec<u32>],
        ii: usize,
        mii: usize,
        control: Option<&SearchControl>,
        trace: &mut SpanCollector,
        attempt: &mut IiAttempt,
    ) -> Outcome {
        let cfg = &self.config;
        let budget = CnfBudget {
            max_vars: cfg.max_vars,
            max_clauses: cfg.max_clauses,
        };
        let mrrg = cgra.mrrg_shared(ii);
        let mut interrupted = || control.is_some_and(SearchControl::is_cancelled);
        let sched_limits = Limits {
            max_conflicts: Some(cfg.schedule_conflicts),
            max_propagations: None,
        };
        let route_limits = Limits {
            max_conflicts: Some(cfg.route_conflicts),
            max_propagations: None,
        };

        for &wf in &cfg.window_factors {
            let mut sched = match ScheduleCnf::build(dfg, cgra, restriction, hops, ii, wf, budget) {
                Ok(s) => s,
                Err(BuildError::Infeasible) => return Outcome::Unsat,
                Err(BuildError::OverBudget) => return Outcome::Budget,
            };
            for _round in 0..cfg.refine_rounds {
                let span = trace.start();
                let before = *sched.cnf.solver.stats();
                let result = sched
                    .cnf
                    .solver
                    .solve_limited(&sched_limits, &mut interrupted);
                let after = *sched.cnf.solver.stats();
                attempt.absorb(before, after);
                attempt.vars = attempt.vars.max(sched.cnf.solver.num_vars());
                attempt.clauses = attempt.clauses.max(sched.cnf.clauses);
                trace.record(
                    "sat.solve",
                    span,
                    &[
                        ("ii", ii as i64),
                        ("phase", 1),
                        ("conflicts", (after.conflicts - before.conflicts) as i64),
                        ("sat", i64::from(result == SolveResult::Sat)),
                    ],
                );
                match result {
                    SolveResult::Unknown => {
                        return if interrupted() {
                            Outcome::Cancelled
                        } else {
                            Outcome::Timeout
                        };
                    }
                    SolveResult::Unsat => break, // widen the window
                    SolveResult::Sat => {}
                }
                let Some((times, pes)) = sched.decode() else {
                    attempt.decode_mismatches += 1;
                    return Outcome::Timeout;
                };
                let mut routing = match RoutingCnf::build(&mrrg, &sched.edges, &times, &pes, budget)
                {
                    Ok(r) => r,
                    Err(BuildError::Infeasible) => {
                        sched.block_assignment(&times, &pes);
                        attempt.refinements += 1;
                        continue;
                    }
                    Err(BuildError::OverBudget) => return Outcome::Budget,
                };
                let span = trace.start();
                let before = *routing.cnf.solver.stats();
                let result = routing
                    .cnf
                    .solver
                    .solve_limited(&route_limits, &mut interrupted);
                let after = *routing.cnf.solver.stats();
                attempt.absorb(before, after);
                attempt.vars = attempt.vars.max(routing.cnf.solver.num_vars());
                attempt.clauses = attempt.clauses.max(routing.cnf.clauses);
                trace.record(
                    "sat.solve",
                    span,
                    &[
                        ("ii", ii as i64),
                        ("phase", 2),
                        ("conflicts", (after.conflicts - before.conflicts) as i64),
                        ("sat", i64::from(result == SolveResult::Sat)),
                    ],
                );
                match result {
                    SolveResult::Unknown => {
                        return if interrupted() {
                            Outcome::Cancelled
                        } else {
                            Outcome::Timeout
                        };
                    }
                    SolveResult::Unsat => {
                        sched.block_assignment(&times, &pes);
                        attempt.refinements += 1;
                        continue;
                    }
                    SolveResult::Sat => {}
                }
                let Some(routes) = routing.decode(&mrrg) else {
                    attempt.decode_mismatches += 1;
                    sched.block_assignment(&times, &pes);
                    attempt.refinements += 1;
                    continue;
                };
                let mapping = Mapping {
                    mapper: self.name(),
                    ii,
                    mii,
                    time_of: times,
                    pe_of: pes,
                    routes: Some(routes),
                    stats: MappingStats::default(),
                };
                // never trust the encoder: re-check the decoded mapping
                // against the independent verifier before accepting it
                if mapping.verify(dfg, cgra).is_err() {
                    attempt.decode_mismatches += 1;
                    sched.block_assignment(&mapping.time_of, &mapping.pe_of);
                    attempt.refinements += 1;
                    continue;
                }
                return Outcome::Mapped(mapping);
            }
        }
        Outcome::Unsat
    }
}

impl LowerLevelMapper for SatMapper {
    fn map(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
    ) -> Result<Mapping, MapError> {
        self.map_with_control(dfg, cgra, restriction, None)
    }

    fn map_with_control(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
        control: Option<&SearchControl>,
    ) -> Result<Mapping, MapError> {
        self.map_traced(
            dfg,
            cgra,
            restriction,
            control,
            &mut SpanCollector::disabled(),
        )
    }

    fn map_traced(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
        control: Option<&SearchControl>,
        trace: &mut SpanCollector,
    ) -> Result<Mapping, MapError> {
        let start = Instant::now();
        if dfg.num_ops() > self.config.max_ops {
            return Err(MapError::exhausted(0, self.name()));
        }
        let mii = min_ii(dfg, cgra).mii();
        let max_ii = mii * self.config.max_ii_factor + self.config.max_ii_offset;
        let hops = crate::sat_encode::hop_distances(cgra);
        let mut stats = MappingStats::default();
        for ii in mii..=max_ii {
            if let Some(c) = control {
                if c.is_cancelled() {
                    return Err(MapError::cancelled(ii.saturating_sub(1), self.name()));
                }
                if !c.admits(ii) {
                    return Err(MapError::exhausted(ii.saturating_sub(1), self.name()));
                }
            }
            stats.ii_attempts += 1;
            let mut attempt = IiAttempt::new(ii);
            let ii_span = trace.start();
            let outcome = self.try_ii(
                dfg,
                cgra,
                restriction,
                &hops,
                ii,
                mii,
                control,
                trace,
                &mut attempt,
            );
            let success = matches!(outcome, Outcome::Mapped(_));
            trace.record(
                "sat.ii",
                ii_span,
                &[
                    ("ii", ii as i64),
                    ("success", i64::from(success)),
                    ("conflicts", attempt.conflicts as i64),
                    ("propagations", attempt.propagations as i64),
                    ("restarts", attempt.restarts as i64),
                    ("refinements", attempt.refinements as i64),
                ],
            );
            attempt.result = match &outcome {
                Outcome::Mapped(_) => "mapped",
                Outcome::Unsat => "unsat",
                Outcome::Budget => "budget",
                Outcome::Timeout => "timeout",
                Outcome::Cancelled => "cancelled",
            };
            self.attempts
                .lock()
                .expect("attempt log poisoned")
                .push(attempt);
            match outcome {
                Outcome::Mapped(mut mapping) => {
                    if let Some(c) = control {
                        c.record_success(ii);
                    }
                    stats.compile_time = start.elapsed();
                    mapping.stats = stats;
                    return Ok(mapping);
                }
                Outcome::Cancelled => {
                    return Err(MapError::cancelled(ii, self.name()));
                }
                // budget and timeout both leave this II undecided; the
                // search moves on (an exhausted ceiling reports SAT002)
                Outcome::Unsat | Outcome::Budget | Outcome::Timeout => {}
            }
        }
        Err(MapError::exhausted(max_ii, self.name()))
    }

    fn name(&self) -> &'static str {
        "SAT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CancelToken, ExactMapper, PortfolioBound};
    use panorama_arch::CgraConfig;
    use panorama_dfg::{kernels, KernelId, KernelScale};

    fn cgra() -> Cgra {
        Cgra::new(CgraConfig::small_4x4()).expect("valid config")
    }

    /// The comparable parts of a mapping (everything except wall-clock
    /// stats).
    fn fingerprint(m: &Mapping) -> String {
        format!("{};{:?};{:?};{:?}", m.ii(), m.time_of, m.pe_of, m.routes)
    }

    #[test]
    fn maps_and_verifies_every_tiny_kernel() {
        let cgra = cgra();
        let mapper = SatMapper::default();
        for id in KernelId::ALL {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            let mapping = mapper
                .map(&dfg, &cgra, None)
                .unwrap_or_else(|e| panic!("SAT failed on {id:?}: {e}"));
            mapping
                .verify(&dfg, &cgra)
                .unwrap_or_else(|e| panic!("verify failed on {id:?}: {e:?}"));
            assert!(mapping.ii() >= mapping.mii());
            let attempts = mapper.take_attempts();
            assert!(attempts.iter().any(|a| a.result == "mapped"));
            assert_eq!(
                attempts.iter().map(|a| a.decode_mismatches).sum::<usize>(),
                0
            );
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let cgra = cgra();
        for id in [KernelId::Fir, KernelId::Cordic, KernelId::Edn] {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            let run = || {
                let mapper = SatMapper::default();
                let m = mapper.map(&dfg, &cgra, None).expect("maps");
                (fingerprint(&m), mapper.take_attempts())
            };
            let (f1, a1) = run();
            let (f2, a2) = run();
            assert_eq!(f1, f2, "mapping differs across runs on {id:?}");
            assert_eq!(a1, a2, "attempt log differs across runs on {id:?}");
        }
    }

    #[test]
    fn ii_is_never_worse_than_the_exact_mapper() {
        let cgra = cgra();
        let sat = SatMapper::default();
        let exact = ExactMapper::default();
        for id in [KernelId::Fir, KernelId::MatchedFilter, KernelId::Cordic] {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            let (Ok(ms), Ok(me)) = (sat.map(&dfg, &cgra, None), exact.map(&dfg, &cgra, None))
            else {
                continue;
            };
            assert!(
                ms.ii() <= me.ii(),
                "SAT found II {} but exact proved II {} on {id:?}",
                ms.ii(),
                me.ii()
            );
        }
    }

    #[test]
    fn cancellation_degrades_to_a_cancelled_error() {
        let cgra = cgra();
        let dfg = kernels::generate(KernelId::Edn, KernelScale::Tiny);
        let token = CancelToken::new();
        token.cancel();
        let control = SearchControl::new(PortfolioBound::new(), 0, 0).with_cancel(token);
        let err = SatMapper::default()
            .map_with_control(&dfg, &cgra, None, Some(&control))
            .expect_err("fired token must cancel the search");
        assert!(err.cancelled);
    }

    #[test]
    fn bound_admission_prunes_the_search() {
        let cgra = cgra();
        let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
        let bound = PortfolioBound::new();
        // a rival already proved II 1 at a lower tie-break: nothing admits
        SearchControl::new(bound.clone(), 0, 0).record_success(1);
        let control = SearchControl::new(bound, 9, 9);
        let err = SatMapper::default()
            .map_with_control(&dfg, &cgra, None, Some(&control))
            .expect_err("bound must exhaust the search");
        assert!(!err.cancelled);
    }
}
