//! Lower-level CGRA mappers: SPR\* (schedule / place / route) and
//! Ultra-Fast, both optionally guided by PANORAMA's cluster mapping.
//!
//! The pipeline follows the paper's Algorithm 2:
//!
//! 1. [`min_ii`] computes the recurrence- and resource-constrained minimum
//!    initiation interval (Rau, MICRO'94);
//! 2. [`schedule`](schedule::modulo_schedule) produces an iterative modulo
//!    schedule at a candidate II;
//! 3. [`SprMapper`] places operations on FUs (restricted to their assigned
//!    CGRA clusters when a [`Restriction`] is given) and routes every data
//!    dependency through the [`Mrrg`](panorama_arch::Mrrg) with
//!    PathFinder-style negotiated congestion, repairing overuse with a
//!    simulated-annealing placement loop;
//! 4. [`UltraFastMapper`] reproduces the Ultra-Fast baseline: a greedy 2-D
//!    scheduler over an abstract single-cycle multi-hop HyCUBE with a
//!    per-cycle wiring budget.
//!
//! Both mappers return a [`Mapping`] whose [`verify`](Mapping::verify)
//! method independently re-checks placement legality, route connectivity,
//! route timing and resource capacities.
//!
//! # Examples
//!
//! ```
//! use panorama_arch::{Cgra, CgraConfig};
//! use panorama_dfg::{kernels, KernelId, KernelScale};
//! use panorama_mapper::{LowerLevelMapper, SprMapper};
//!
//! let cgra = Cgra::new(CgraConfig::small_4x4())?;
//! let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
//! let mapping = SprMapper::default().map(&dfg, &cgra, None)?;
//! assert!(mapping.qom() <= 1.0);
//! mapping.verify(&dfg, &cgra)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod configware;
mod control;
mod exact;
mod mapping;
mod mii;
mod placement;
mod render;
mod restrict;
mod router;
mod sat_encode;
mod sat_mapper;
mod schedule;
mod spr;
mod stats;
mod ultrafast;
mod warmstart;

pub use cancel::CancelToken;
pub use configware::{ConfigWord, Configware, InPort, OperandSel, ValueSource};
pub use control::{PortfolioBound, SearchControl};
pub use exact::{ExactConfig, ExactMapper};
pub use mapping::{Mapping, MappingStats, Route, VerifyError};
pub use mii::{
    critical_recurrences, exact_recurrence_mii, min_ii, restricted_min_ii, MiiReport,
    RecurrenceAnalysis,
};
pub use restrict::Restriction;
pub use router::RouterConfig;
pub use sat_mapper::{IiAttempt, SatMapper, SatMapperConfig};
pub use schedule::{modulo_schedule, modulo_schedule_variant, ScheduleError};
pub use spr::{MapError, SprConfig, SprMapper};
pub use stats::RouteStats;
pub use ultrafast::{UltraFastConfig, UltraFastMapper};
pub use warmstart::{WarmHint, WarmStartCache, DEFAULT_WARM_CACHE_CAPACITY};

use panorama_arch::Cgra;
use panorama_dfg::Dfg;
use panorama_trace::SpanCollector;

/// A lower-level mapper that PANORAMA's higher-level cluster mapping can
/// guide (paper §3.3: "Panorama is a portable higher-level mapper which
/// can be combined with any lower-level CGRA mapper").
///
/// `Sync` is required so the portfolio pipeline can drive one mapper from
/// several candidate worker threads; mappers are plain configuration
/// structs, so this holds trivially.
pub trait LowerLevelMapper: Sync {
    /// Maps `dfg` onto `cgra`. When `restriction` is given, each operation
    /// may only be placed inside its assigned CGRA clusters.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] when no valid mapping is found within the
    /// mapper's II and effort budgets.
    fn map(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
    ) -> Result<Mapping, MapError>;

    /// Like [`map`](LowerLevelMapper::map), but consulted by a portfolio
    /// search: before each II attempt the mapper should ask
    /// [`SearchControl::admits`] and give up once the answer is `false`
    /// (II searches ascend, so the answer stays `false`), and report
    /// successes via [`SearchControl::record_success`]. The default
    /// implementation ignores the control and maps normally — correct for
    /// mappers without an incremental II search.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] when no admissible mapping is found.
    fn map_with_control(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
        control: Option<&SearchControl>,
    ) -> Result<Mapping, MapError> {
        let _ = control;
        self.map(dfg, cgra, restriction)
    }

    /// Like [`map_with_control`](LowerLevelMapper::map_with_control), but
    /// additionally records per-phase spans and counters into `trace`. The
    /// default implementation ignores the collector (correct for mappers
    /// without instrumentation); passing a disabled collector must cost
    /// nothing beyond a branch per would-be event.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] when no admissible mapping is found.
    fn map_traced(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
        control: Option<&SearchControl>,
        trace: &mut SpanCollector,
    ) -> Result<Mapping, MapError> {
        let _ = trace;
        self.map_with_control(dfg, cgra, restriction, control)
    }

    /// Short mapper name for reports ("SPR*", "Ultra-Fast").
    fn name(&self) -> &'static str;
}
