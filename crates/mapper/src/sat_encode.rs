//! CNF encodings for the SAT modulo-scheduling mapper.
//!
//! The mapper splits each II attempt into two cooperating CNF problems
//! (DESIGN.md §16):
//!
//! * **Phase 1 — schedule + placement** ([`ScheduleCnf`]): one-hot
//!   op→time-slot variables over a bounded window above each op's ASAP
//!   time, one-hot op→PE variables over capability/restriction-filtered
//!   domains, dependence clauses across II windows, and FU-exclusivity
//!   via auxiliary (op, PE, modulo-slot) activation variables.
//! * **Phase 2 — routing** ([`RoutingCnf`]): for a decoded schedule and
//!   placement, per-dependence reachability over the time-expanded MRRG
//!   (states are `(node, advances-so-far)` pairs, pruned to the
//!   forward-reachable ∩ backward-coreachable set), with capacity
//!   exclusion over `(producer, arrival-cycle)` keys so fan-out of one
//!   value shares a node exactly as [`Mapping::verify`] counts it.
//!
//! Placements whose PE distance provably exceeds an edge's schedule slack
//! are cut between the phases (a CEGAR refinement), and a routing-UNSAT
//! outcome blocks the exact phase-1 assignment before re-solving.
//!
//! Everything iterates over sorted, index-ordered structures — no hash
//! iteration feeds clause order — so the produced CNF, and therefore the
//! whole search, is deterministic.
//!
//! [`Mapping::verify`]: crate::Mapping::verify

use crate::restrict::Restriction;
use crate::Route;
use panorama_arch::{Cgra, Mrrg, NodeKind, PeId};
use panorama_dfg::Dfg;
use panorama_sat::{Lit, Solver, Var};
use std::collections::{BTreeMap, VecDeque};

/// Why an encoding could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BuildError {
    /// The instance cannot be scheduled/placed at this II regardless of
    /// the CNF (empty placement domain, or the recurrence constraints
    /// diverge because the II is below the true recurrence MII).
    Infeasible,
    /// The variable or clause budget was exceeded.
    OverBudget,
}

/// Variable/clause budget shared by both phases of one II attempt.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CnfBudget {
    pub max_vars: usize,
    pub max_clauses: usize,
}

/// A solver wrapper that counts clauses and enforces [`CnfBudget`].
pub(crate) struct Cnf {
    pub solver: Solver,
    pub clauses: usize,
    budget: CnfBudget,
}

impl Cnf {
    pub fn new(budget: CnfBudget) -> Self {
        Cnf {
            solver: Solver::new(),
            clauses: 0,
            budget,
        }
    }

    fn var(&mut self) -> Var {
        self.solver.new_var()
    }

    pub fn clause(&mut self, lits: &[Lit]) {
        self.clauses += 1;
        self.solver.add_clause(lits);
    }

    pub fn over_budget(&self) -> bool {
        self.solver.num_vars() > self.budget.max_vars || self.clauses > self.budget.max_clauses
    }

    /// At most one of `lits` true: pairwise for short lists, Sinz
    /// sequential otherwise.
    fn at_most_one(&mut self, lits: &[Lit]) {
        if lits.len() <= 6 {
            for i in 0..lits.len() {
                for j in (i + 1)..lits.len() {
                    self.clause(&[lits[i].negate(), lits[j].negate()]);
                }
            }
        } else {
            self.at_most_k(lits, 1);
        }
    }

    /// Sinz sequential-counter encoding of "at most `k` of `lits`".
    fn at_most_k(&mut self, lits: &[Lit], k: usize) {
        let m = lits.len();
        if m <= k {
            return;
        }
        if k == 0 {
            for &l in lits {
                self.clause(&[l.negate()]);
            }
            return;
        }
        // s[i][j]: among lits[0..=i], at least j+1 are true (i < m-1)
        let s: Vec<Vec<Var>> = (0..m - 1)
            .map(|_| (0..k).map(|_| self.var()).collect())
            .collect();
        self.clause(&[lits[0].negate(), Lit::pos(s[0][0])]);
        for &v in &s[0][1..] {
            self.clause(&[Lit::neg(v)]);
        }
        for i in 1..m - 1 {
            self.clause(&[lits[i].negate(), Lit::pos(s[i][0])]);
            self.clause(&[Lit::neg(s[i - 1][0]), Lit::pos(s[i][0])]);
            for j in 1..k {
                self.clause(&[
                    lits[i].negate(),
                    Lit::neg(s[i - 1][j - 1]),
                    Lit::pos(s[i][j]),
                ]);
                self.clause(&[Lit::neg(s[i - 1][j]), Lit::pos(s[i][j])]);
            }
            self.clause(&[lits[i].negate(), Lit::neg(s[i - 1][k - 1])]);
        }
        self.clause(&[lits[m - 1].negate(), Lit::neg(s[m - 2][k - 1])]);
    }
}

/// One DFG dependence, flattened for the encoders.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EdgeInfo {
    pub src: usize,
    pub dst: usize,
    pub dist: i64,
    pub lat: i64,
}

pub(crate) fn edge_infos(dfg: &Dfg) -> Vec<EdgeInfo> {
    dfg.deps()
        .map(|e| EdgeInfo {
            src: e.src.index(),
            dst: e.dst.index(),
            dist: i64::from(e.weight.distance()),
            lat: i64::from(dfg.op(e.src).kind.latency()),
        })
        .collect()
}

/// All-pairs minimum hop counts over the physical link graph.
pub(crate) fn hop_distances(cgra: &Cgra) -> Vec<Vec<u32>> {
    let n = cgra.num_pes();
    let mut all = vec![vec![u32::MAX; n]; n];
    for src in cgra.pes() {
        let dist = &mut all[src.index()];
        dist[src.index()] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(pe) = queue.pop_front() {
            let d = dist[pe.index()];
            for link in cgra.links_from(pe) {
                let to = link.dst.index();
                if dist[to] == u32::MAX {
                    dist[to] = d + 1;
                    queue.push_back(link.dst);
                }
            }
        }
    }
    all
}

/// Minimum time advances a route from `a` to `b` needs: the hop count,
/// but at least one (even a same-PE forward goes out → input across one
/// cycle boundary).
fn min_advances(hops: &[Vec<u32>], a: PeId, b: PeId) -> i64 {
    let h = hops[a.index()][b.index()];
    if h == u32::MAX {
        i64::MAX / 2
    } else {
        i64::from(h).max(1)
    }
}

/// Phase-1 CNF: modulo schedule and placement at one II.
pub(crate) struct ScheduleCnf {
    pub cnf: Cnf,
    /// Per-op earliest schedule time anchoring its window.
    pub asap: Vec<i64>,
    /// `x[v][i]`: op `v` scheduled at `asap[v] + i`.
    pub x: Vec<Vec<Var>>,
    /// `p[v][j]`: op `v` placed on `domains[v][j]`.
    pub p: Vec<Vec<Var>>,
    pub domains: Vec<Vec<PeId>>,
    pub edges: Vec<EdgeInfo>,
}

impl ScheduleCnf {
    /// Builds the schedule/placement CNF. `hops` is the all-pairs link
    /// distance table from [`hop_distances`].
    pub fn build(
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&Restriction>,
        hops: &[Vec<u32>],
        ii: usize,
        window_factor: usize,
        budget: CnfBudget,
    ) -> Result<ScheduleCnf, BuildError> {
        let n = dfg.num_ops();
        let edges = edge_infos(dfg);
        let asap = asap_times(n, &edges, ii)?;
        let window = (window_factor * ii).max(2);

        let domains: Vec<Vec<PeId>> = dfg
            .op_ids()
            .map(|op| {
                cgra.pes()
                    .filter(|&pe| !dfg.op(op).kind.needs_memory() || cgra.is_mem_pe(pe))
                    .filter(|&pe| {
                        dfg.op(op).kind != panorama_dfg::OpKind::Mul || cgra.has_multiplier(pe)
                    })
                    .filter(|&pe| restriction.is_none_or(|r| r.allows(op, cgra.cluster_of(pe))))
                    .collect()
            })
            .collect();
        if domains.iter().any(Vec::is_empty) {
            return Err(BuildError::Infeasible);
        }

        let mut cnf = Cnf::new(budget);
        let x: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..window).map(|_| cnf.var()).collect())
            .collect();
        let p: Vec<Vec<Var>> = domains
            .iter()
            .map(|d| d.iter().map(|_| cnf.var()).collect())
            .collect();

        // one-hot: every op has exactly one time and one PE
        for v in 0..n {
            let time_lits: Vec<Lit> = x[v].iter().map(|&var| Lit::pos(var)).collect();
            cnf.clause(&time_lits);
            cnf.at_most_one(&time_lits);
            let pe_lits: Vec<Lit> = p[v].iter().map(|&var| Lit::pos(var)).collect();
            cnf.clause(&pe_lits);
            cnf.at_most_one(&pe_lits);
        }

        // dependence windows: x[u][i] → some x[v][j] with
        // asap[v]+j ≥ asap[u]+i+lat−dist·ii, plus the converse support
        // clause (redundant but sharpens propagation)
        let w = window as i64;
        for e in &edges {
            let shift = asap[e.src] - asap[e.dst] + e.lat - e.dist * ii as i64;
            for i in 0..window {
                let min_j = i as i64 + shift;
                let mut later: Vec<Lit> = vec![Lit::neg(x[e.src][i])];
                later.extend((min_j.max(0)..w).map(|j| Lit::pos(x[e.dst][j as usize])));
                cnf.clause(&later);
            }
            for j in 0..window {
                let max_i = j as i64 - shift;
                let mut earlier: Vec<Lit> = vec![Lit::neg(x[e.dst][j])];
                earlier.extend(
                    (0..=max_i.min(w - 1))
                        .filter(|&i| i >= 0)
                        .map(|i| Lit::pos(x[e.src][i as usize])),
                );
                cnf.clause(&earlier);
            }
            if cnf.over_budget() {
                return Err(BuildError::OverBudget);
            }
        }

        // distance feasibility: a route from PE `a` to PE `b` needs at
        // least `min_advances(a, b)` cycles of schedule slack. Per edge,
        // slack-threshold variables slk[m] ("slack ≥ m") form a monotone
        // chain; placements trigger the threshold they need and schedule
        // pairs refute every threshold above their actual slack. This is
        // the *complete* distance constraint — no lazy refinement needed.
        for e in &edges {
            let max_slack = asap[e.dst] + w - 1 + e.dist * ii as i64 - asap[e.src];
            let needs: Vec<Vec<i64>> = domains[e.src]
                .iter()
                .map(|&a| {
                    domains[e.dst]
                        .iter()
                        .map(|&b| min_advances(hops, a, b))
                        .collect()
                })
                .collect();
            let cap_m = needs
                .iter()
                .flatten()
                .copied()
                .filter(|&m| m <= max_slack)
                .max()
                .unwrap_or(1);
            let slk: Vec<Var> = (2..=cap_m).map(|_| cnf.var()).collect();
            let slk_of = |m: i64| slk[(m - 2) as usize];
            for m in 3..=cap_m {
                cnf.clause(&[Lit::neg(slk_of(m)), Lit::pos(slk_of(m - 1))]);
            }
            for (ja, row) in needs.iter().enumerate() {
                for (jb, &need) in row.iter().enumerate() {
                    if need > max_slack {
                        // not satisfiable in this window: cut the PE pair
                        cnf.clause(&[Lit::neg(p[e.src][ja]), Lit::neg(p[e.dst][jb])]);
                    } else if need >= 2 {
                        cnf.clause(&[
                            Lit::neg(p[e.src][ja]),
                            Lit::neg(p[e.dst][jb]),
                            Lit::pos(slk_of(need)),
                        ]);
                    }
                }
            }
            for i in 0..window {
                for j in 0..window {
                    let s = asap[e.dst] + j as i64 + e.dist * ii as i64 - (asap[e.src] + i as i64);
                    if (1..cap_m).contains(&s) {
                        cnf.clause(&[
                            Lit::neg(x[e.src][i]),
                            Lit::neg(x[e.dst][j]),
                            Lit::neg(slk_of(s + 1)),
                        ]);
                    }
                }
            }
            if cnf.over_budget() {
                return Err(BuildError::OverBudget);
            }
        }

        // FU exclusivity: z[v][pe][s] activated when op v occupies
        // (pe, slot s); at most one activation per (pe, slot)
        let mut slot_users: BTreeMap<(u32, usize), Vec<Lit>> = BTreeMap::new();
        for v in 0..n {
            for (j, &pe) in domains[v].iter().enumerate() {
                // which slots can op v occupy on this PE?
                for s in 0..ii {
                    let on_slot: Vec<usize> = (0..window)
                        .filter(|&i| ((asap[v] + i as i64) % ii as i64) as usize == s)
                        .collect();
                    if on_slot.is_empty() {
                        continue;
                    }
                    let z = cnf.var();
                    for &i in &on_slot {
                        cnf.clause(&[Lit::neg(p[v][j]), Lit::neg(x[v][i]), Lit::pos(z)]);
                    }
                    slot_users
                        .entry((pe.index() as u32, s))
                        .or_default()
                        .push(Lit::pos(z));
                }
            }
            if cnf.over_budget() {
                return Err(BuildError::OverBudget);
            }
        }
        for users in slot_users.values() {
            if users.len() > 1 {
                cnf.at_most_one(users);
            }
        }
        if cnf.over_budget() {
            return Err(BuildError::OverBudget);
        }

        Ok(ScheduleCnf {
            cnf,
            asap,
            x,
            p,
            domains,
            edges,
        })
    }

    /// Reads the schedule and placement out of a satisfying assignment.
    pub fn decode(&self) -> Option<(Vec<usize>, Vec<PeId>)> {
        let n = self.x.len();
        let mut times = Vec::with_capacity(n);
        let mut pes = Vec::with_capacity(n);
        for v in 0..n {
            let i = self.x[v]
                .iter()
                .position(|&var| self.cnf.solver.value(var) == Some(true))?;
            times.push((self.asap[v] + i as i64) as usize);
            let j = self.p[v]
                .iter()
                .position(|&var| self.cnf.solver.value(var) == Some(true))?;
            pes.push(self.domains[v][j]);
        }
        Some((times, pes))
    }

    /// Blocks the exact decoded schedule + placement (used when routing
    /// refutes it), forcing the next solve to a different assignment.
    pub fn block_assignment(&mut self, times: &[usize], pes: &[PeId]) {
        let mut lits = Vec::with_capacity(2 * times.len());
        for v in 0..times.len() {
            let i = (times[v] as i64 - self.asap[v]) as usize;
            lits.push(Lit::neg(self.x[v][i]));
            let j = self.domains[v]
                .iter()
                .position(|&d| d == pes[v])
                .expect("placed in domain");
            lits.push(Lit::neg(self.p[v][j]));
        }
        self.cnf.clause(&lits);
    }
}

/// Longest-path ASAP times under `tv ≥ tu + lat − dist·ii`; fails when
/// the constraint graph has a positive cycle (II below the recurrence
/// bound).
fn asap_times(n: usize, edges: &[EdgeInfo], ii: usize) -> Result<Vec<i64>, BuildError> {
    let mut asap = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for e in edges {
            let lo = asap[e.src] + e.lat - e.dist * ii as i64;
            if asap[e.dst] < lo {
                asap[e.dst] = lo;
                changed = true;
            }
        }
        if !changed {
            return Ok(asap);
        }
        if round == n {
            return Err(BuildError::Infeasible);
        }
    }
    Ok(asap)
}

/// One time-expanded routing state: `(MRRG node, advances so far)`.
type State = (u32, i64);

struct EdgeStates {
    /// Kept (reachable ∩ co-reachable) states, sorted.
    states: Vec<State>,
    vars: Vec<Var>,
    /// The `(out node, 0)` state the route departs from.
    start: State,
    /// Total advances the route must make.
    d_total: i64,
    /// Target FU node the last route node must feed.
    target_fu: u32,
}

/// Phase-2 CNF: joint routing of every dependence for one decoded
/// schedule + placement.
pub(crate) struct RoutingCnf {
    pub cnf: Cnf,
    per_edge: Vec<EdgeStates>,
}

/// Successor states of `(node, d)` in the per-edge expansion: follow MRRG
/// edges, never through an FU, never past `d_total` advances.
fn successors(mrrg: &Mrrg, node: u32, d: i64, d_total: i64) -> Vec<State> {
    let mut out = Vec::new();
    for me in mrrg.out_edges(panorama_arch::MrrgNodeId::from_index(node as usize)) {
        if matches!(mrrg.kind(me.dst), NodeKind::Fu) {
            continue;
        }
        let nd = d + i64::from(me.advance);
        if nd <= d_total {
            out.push((me.dst.index() as u32, nd));
        }
    }
    out
}

fn is_terminal(mrrg: &Mrrg, state: State, d_total: i64, target_fu: u32) -> bool {
    state.1 == d_total
        && mrrg
            .out_edges(panorama_arch::MrrgNodeId::from_index(state.0 as usize))
            .iter()
            .any(|me| me.dst.index() as u32 == target_fu)
}

impl RoutingCnf {
    /// Builds the joint routing CNF. `Err(Infeasible)` means some edge
    /// has no route of the required length at all (independent of
    /// capacity), so the phase-1 assignment is refuted outright.
    pub fn build(
        mrrg: &Mrrg,
        edges: &[EdgeInfo],
        times: &[usize],
        pes: &[PeId],
        budget: CnfBudget,
    ) -> Result<RoutingCnf, BuildError> {
        let ii = mrrg.ii() as i64;
        let mut cnf = Cnf::new(budget);
        let mut per_edge = Vec::with_capacity(edges.len());
        // capacity keys: node → (producer, arrival cycle) → activation var
        let mut cap_keys: BTreeMap<u32, BTreeMap<(u32, i64), Var>> = BTreeMap::new();

        for e in edges {
            let (tu, tv) = (times[e.src] as i64, times[e.dst] as i64);
            let d_total = tv + e.dist * ii - tu;
            let start = mrrg.out(pes[e.src], (tu % ii) as usize).index() as u32;
            let target_fu = mrrg.fu(pes[e.dst], (tv % ii) as usize).index() as u32;

            // forward reachability
            let mut reach: BTreeMap<State, bool> = BTreeMap::new(); // state -> is_terminal
            let mut queue = VecDeque::from([(start, 0i64)]);
            reach.insert(
                (start, 0),
                is_terminal(mrrg, (start, 0), d_total, target_fu),
            );
            while let Some(s) = queue.pop_front() {
                for ns in successors(mrrg, s.0, s.1, d_total) {
                    if let std::collections::btree_map::Entry::Vacant(e) = reach.entry(ns) {
                        e.insert(is_terminal(mrrg, ns, d_total, target_fu));
                        queue.push_back(ns);
                    }
                }
            }
            if !reach.values().any(|&t| t) {
                return Err(BuildError::Infeasible);
            }
            // backward co-reachability over the restricted state graph
            let mut rev: BTreeMap<State, Vec<State>> = BTreeMap::new();
            for &s in reach.keys() {
                for ns in successors(mrrg, s.0, s.1, d_total) {
                    if reach.contains_key(&ns) {
                        rev.entry(ns).or_default().push(s);
                    }
                }
            }
            let mut kept: BTreeMap<State, bool> = BTreeMap::new();
            let mut queue: VecDeque<State> =
                reach.iter().filter(|&(_, &t)| t).map(|(&s, _)| s).collect();
            for s in &queue {
                kept.insert(*s, true);
            }
            while let Some(s) = queue.pop_front() {
                for &ps in rev.get(&s).map_or(&[] as &[State], Vec::as_slice) {
                    kept.entry(ps).or_insert_with(|| {
                        queue.push_back(ps);
                        false
                    });
                }
            }
            if !kept.contains_key(&(start, 0)) {
                return Err(BuildError::Infeasible);
            }

            let states: Vec<State> = kept.keys().copied().collect();
            let vars: Vec<Var> = states.iter().map(|_| cnf.var()).collect();
            let index: BTreeMap<State, usize> =
                states.iter().enumerate().map(|(i, &s)| (s, i)).collect();

            // the route starts at the producer's broadcast point
            cnf.clause(&[Lit::pos(vars[index[&(start, 0)]])]);
            // every active non-terminal state hands the signal onward
            for (i, &s) in states.iter().enumerate() {
                if is_terminal(mrrg, s, d_total, target_fu) {
                    continue;
                }
                let mut lits = vec![Lit::neg(vars[i])];
                for ns in successors(mrrg, s.0, s.1, d_total) {
                    if let Some(&k) = index.get(&ns) {
                        lits.push(Lit::pos(vars[k]));
                    }
                }
                cnf.clause(&lits);
            }
            // capacity activation: using node n after d advances places
            // the producer's value there in absolute cycle tu + d
            let producer = e.src as u32;
            for (i, &(node, d)) in states.iter().enumerate() {
                let node_id = panorama_arch::MrrgNodeId::from_index(node as usize);
                if mrrg.capacity(node_id) == u16::MAX {
                    continue;
                }
                let key = (producer, tu + d);
                let entry = cap_keys.entry(node).or_default();
                let var = *entry.entry(key).or_insert_with(|| cnf.var());
                cnf.clause(&[Lit::neg(vars[i]), Lit::pos(var)]);
            }
            per_edge.push(EdgeStates {
                states,
                vars,
                start: (start, 0),
                d_total,
                target_fu,
            });
            if cnf.over_budget() {
                return Err(BuildError::OverBudget);
            }
        }

        // per-node capacity over distinct (producer, cycle) keys
        for (node, keys) in &cap_keys {
            let node_id = panorama_arch::MrrgNodeId::from_index(*node as usize);
            let cap = mrrg.capacity(node_id) as usize;
            let lits: Vec<Lit> = keys.values().map(|&v| Lit::pos(v)).collect();
            if lits.len() > cap {
                if cap == 1 {
                    cnf.at_most_one(&lits);
                } else {
                    cnf.at_most_k(&lits, cap);
                }
            }
        }
        if cnf.over_budget() {
            return Err(BuildError::OverBudget);
        }

        Ok(RoutingCnf { cnf, per_edge })
    }

    /// Walks the model into concrete routes, one per DFG dependence. The
    /// successor clauses guarantee every active non-terminal state has an
    /// active successor, and `(advances, same-cycle DAG position)` rises
    /// strictly along any walk, so the first-active-successor walk always
    /// reaches a terminal.
    pub fn decode(&self, mrrg: &Mrrg) -> Option<Vec<Route>> {
        let mut routes = Vec::with_capacity(self.per_edge.len());
        for (edge_index, es) in self.per_edge.iter().enumerate() {
            let index: BTreeMap<State, usize> =
                es.states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
            let truthy = |s: &State| -> bool {
                index
                    .get(s)
                    .is_some_and(|&i| self.cnf.solver.value(es.vars[i]) == Some(true))
            };
            let mut cur = es.start;
            let mut nodes = vec![panorama_arch::MrrgNodeId::from_index(cur.0 as usize)];
            let mut steps = 0usize;
            while !is_terminal(mrrg, cur, es.d_total, es.target_fu) {
                steps += 1;
                if steps > es.states.len() + 1 {
                    return None;
                }
                let next = successors(mrrg, cur.0, cur.1, es.d_total)
                    .into_iter()
                    .find(|s| truthy(s))?;
                nodes.push(panorama_arch::MrrgNodeId::from_index(next.0 as usize));
                cur = next;
            }
            routes.push(Route { edge_index, nodes });
        }
        Some(routes)
    }
}
