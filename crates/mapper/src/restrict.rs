//! The placement restriction PANORAMA's cluster mapping imposes on a
//! lower-level mapper.

use panorama_arch::{Cgra, ClusterId};
use panorama_cluster::Cdg;
use panorama_dfg::{Dfg, OpId};
use panorama_place::ClusterMap;

/// For every DFG operation, the set of CGRA clusters whose FUs it may use
/// (paper Algorithm 2, line 6: *"if Cluster(node) is mapped to
/// Cluster(FU)"*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restriction {
    allowed: Vec<Vec<ClusterId>>,
    /// The strictly assigned ("home") cells, a subset of `allowed`;
    /// placement prefers these and only spills memory ops outward.
    home: Vec<Vec<ClusterId>>,
}

impl Restriction {
    /// Builds the restriction from a cluster mapping: an op inherits the
    /// CGRA cells assigned to its CDG cluster.
    ///
    /// # Panics
    ///
    /// Panics when the cluster map's grid disagrees with `cgra`'s cluster
    /// grid, or when the CDG does not cover `dfg`.
    pub fn from_cluster_map(dfg: &Dfg, cdg: &Cdg, map: &ClusterMap, cgra: &Cgra) -> Self {
        assert_eq!(
            map.grid(),
            cgra.cluster_grid(),
            "cluster map grid must match the CGRA"
        );
        assert_eq!(
            cdg.total_dfg_nodes(),
            dfg.num_ops(),
            "CDG must cover the DFG"
        );
        let (rows, cols) = map.grid();
        let mut allowed: Vec<Vec<ClusterId>> = vec![Vec::new(); dfg.num_ops()];
        let mut home: Vec<Vec<ClusterId>> = vec![Vec::new(); dfg.num_ops()];
        for cdg_node in cdg.cluster_ids() {
            let cells = map.cells_of(cdg_node);
            let strict: Vec<ClusterId> =
                cells.iter().map(|&(r, c)| cgra.cluster_at(r, c)).collect();
            // Memory ops additionally reach the neighbouring cells' memory
            // columns: spectral clustering balances *node* counts, not
            // loads/stores, and a cell has few memory-capable PEs — without
            // this relaxation one load-heavy cluster dictates the II.
            let mut relaxed = strict.clone();
            for &(r, c) in &cells {
                for (dr, dc) in [(0i64, 1i64), (1, 0), (0, -1), (-1, 0)] {
                    let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                    if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                        continue;
                    }
                    let cl = cgra.cluster_at(nr as usize, nc as usize);
                    if !relaxed.contains(&cl) {
                        relaxed.push(cl);
                    }
                }
            }
            for &op in cdg.members(cdg_node) {
                allowed[op.index()] = if dfg.op(op).kind.needs_memory() {
                    relaxed.clone()
                } else {
                    strict.clone()
                };
                home[op.index()] = strict.clone();
            }
        }
        Restriction { allowed, home }
    }

    /// Unrestricted placement for every op (useful in tests/ablations).
    pub fn unrestricted(dfg: &Dfg, cgra: &Cgra) -> Self {
        let all: Vec<ClusterId> = (0..cgra.num_clusters())
            .map(|i| {
                let (r, c) = (i / cgra.cluster_grid().1, i % cgra.cluster_grid().1);
                cgra.cluster_at(r, c)
            })
            .collect();
        Restriction {
            home: vec![all.clone(); dfg.num_ops()],
            allowed: vec![all; dfg.num_ops()],
        }
    }

    /// Whether `op` may be placed inside `cluster`.
    pub fn allows(&self, op: OpId, cluster: ClusterId) -> bool {
        self.allowed[op.index()].contains(&cluster)
    }

    /// The clusters `op` may use.
    pub fn clusters_of(&self, op: OpId) -> &[ClusterId] {
        &self.allowed[op.index()]
    }

    /// The strictly assigned home cells of `op` (placement prefers these).
    pub fn home_of(&self, op: OpId) -> &[ClusterId] {
        &self.home[op.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panorama_arch::CgraConfig;
    use panorama_cluster::{Cdg, Partition};
    use panorama_dfg::{DfgBuilder, OpKind};
    use panorama_place::{map_clusters, ScatterConfig};

    #[test]
    fn restriction_follows_cluster_map() {
        let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
        let mut b = DfgBuilder::new("t");
        let mut labels = Vec::new();
        let mut prev = None;
        for g in 0..4 {
            for i in 0..3 {
                let v = b.op(OpKind::Add, format!("g{g}_{i}"));
                if let Some(p) = prev {
                    b.data(p, v);
                }
                prev = Some(v);
                labels.push(g);
            }
        }
        let dfg = b.build().unwrap();
        let cdg = Cdg::new(&dfg, &Partition::new(labels, 4));
        let map = map_clusters(&cdg, 2, 2, &ScatterConfig::default()).unwrap();
        let restriction = Restriction::from_cluster_map(&dfg, &cdg, &map, &cgra);
        for op in dfg.op_ids() {
            assert!(
                !restriction.clusters_of(op).is_empty(),
                "every op keeps at least one cluster"
            );
        }
        // ops of the same CDG cluster share the same allowed set
        let first = restriction.clusters_of(dfg.op_ids().next().unwrap());
        for op in dfg.op_ids().take(3) {
            assert_eq!(restriction.clusters_of(op), first);
        }
    }

    #[test]
    fn unrestricted_allows_everything() {
        let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
        let mut b = DfgBuilder::new("t");
        let x = b.op(OpKind::Add, "x");
        let dfg = b.build().unwrap();
        let r = Restriction::unrestricted(&dfg, &cgra);
        for i in 0..cgra.num_clusters() {
            let (rr, cc) = (i / 2, i % 2);
            assert!(r.allows(x, cgra.cluster_at(rr, cc)));
        }
    }
}
