//! Bounded MPMC job queue with load shedding.
//!
//! The serving pipeline's backpressure point: connection threads
//! [`try_push`](JobQueue::try_push) (never block, never grow the queue
//! past its capacity — a full queue is the *caller's* problem, surfaced as
//! `503`), worker threads [`pop`](JobQueue::pop) (block until a job or
//! shutdown). Closing the queue rejects new pushes while letting workers
//! drain what was already accepted, which is exactly the graceful-drain
//! ordering the daemon needs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed the request.
    Full,
    /// The queue is draining; no new work is accepted.
    Closed,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An open queue accepting at most `capacity` pending jobs
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Recovers from poisoning: the queue state is a plain `VecDeque` plus
    /// a flag, both valid after any panic point, and a stuck queue would
    /// deadlock every connection thread.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `job` unless the queue is full or closed. Never blocks.
    pub fn try_push(&self, job: T) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((job, PushError::Closed));
        }
        if inner.jobs.len() >= self.capacity {
            return Err((job, PushError::Full));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest job, blocking while the queue is open and
    /// empty. Returns `None` only when the queue is closed *and* drained —
    /// the worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting pushes; queued jobs remain poppable. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (excludes jobs a worker already popped).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// The maximum number of pending jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_and_reports_the_job_back() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (job, err) = q.try_push(3).unwrap_err();
        assert_eq!((job, err), (3, PushError::Full));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_pops() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3).unwrap_err().1, PushError::Closed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays drained
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = Arc::new(JobQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then feed it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::<i32>::new(1));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().1, PushError::Full);
    }
}
