//! `panorama-serve`: the PANORAMA compile daemon.
//!
//! Exposes the compilation pipeline as a long-lived service so iterative
//! DSE loops amortise process startup and MRRG construction across
//! requests instead of paying them per invocation:
//!
//! * `POST /compile` — map a kernel; the response body is byte-identical
//!   to `panorama compile --json` for the same inputs;
//! * `POST /compile-batch` — map up to 64 kernels in one request; each
//!   entry's result is byte-identical to the `/compile` equivalent
//!   (`panorama-serve-batch-v1`);
//! * `POST /lint` — run the static mappability prechecker;
//! * `GET /healthz` — liveness probe;
//! * `GET /metrics` — queue depth, shed/cancel counts, cache hit rates,
//!   per-phase latency percentiles (`panorama-serve-metrics-v1`);
//! * `POST /admin/shutdown` — loopback-only graceful drain.
//!
//! Zero dependencies beyond `std` and the workspace crates: HTTP framing
//! is [`http`], backpressure is [`queue`], replay is [`cache`], and
//! accounting is [`metrics`]. The daemon itself lives in [`server`].

pub mod cache;
pub mod diskcache;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod quota;
pub mod server;

pub use cache::{ContentHash, ResultCache};
pub use diskcache::{DiskCache, DiskCacheStats};
pub use metrics::{CacheStats, Metrics, METRICS_SCHEMA};
pub use queue::{JobQueue, PushError};
pub use quota::{Quota, QuotaStats, TenantStats, TENANT_HEADER};
pub use server::{DrainHandle, ServeConfig, Server, BATCH_SCHEMA, ERROR_SCHEMA, MAX_BATCH_ENTRIES};
