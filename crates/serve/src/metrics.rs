//! Exact request accounting and per-phase latency aggregation.
//!
//! Every request-state transition happens under one lock as a *combined*
//! update (e.g. "left the queue, became in-flight"), so the fundamental
//! conservation invariant
//!
//! ```text
//! received == completed + shed + cancelled + failed + quota_rejected
//!             + queued + in_flight
//! ```
//!
//! holds at every instant, not just quiescently — `/metrics` snapshots can
//! be checked for exact equality (lint `SERVE002`), and a violated
//! invariant is a server bug, never a race artifact.
//!
//! Latencies aggregate into power-of-two bucket histograms fed from the
//! per-job trace collectors ([`panorama_trace`] events), keeping memory
//! constant regardless of request volume while still answering
//! p50/p90/p99 within a factor of two.

use crate::diskcache::DiskCacheStats;
use crate::quota::QuotaStats;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Schema identifier of the `/metrics` document (lint `SERVE001`).
pub const METRICS_SCHEMA: &str = "panorama-serve-metrics-v1";

/// Log2-bucketed latency histogram.
#[derive(Debug, Clone)]
struct Hist {
    phase: String,
    /// `buckets[i]` counts samples with `ns < 2^i` (and `>= 2^(i-1)`).
    buckets: [u64; 64],
    count: u64,
    total_ns: u64,
}

impl Hist {
    fn new(phase: &str) -> Self {
        Hist {
            phase: phase.to_string(),
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
        }
    }

    fn add(&mut self, ns: u64) {
        let idx = (64 - ns.leading_zeros() as usize).min(63);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    /// The upper bound of the bucket holding the `p`-th percentile sample
    /// (`p` in 0..=100).
    fn percentile_ns(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count * p).div_ceil(100).max(1);
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if idx >= 63 {
                    u64::MAX
                } else {
                    (1u64 << idx) - 1
                };
            }
        }
        u64::MAX
    }
}

#[derive(Debug, Default)]
struct Inner {
    received: u64,
    completed: u64,
    shed: u64,
    cancelled: u64,
    failed: u64,
    quota_rejected: u64,
    queued: u64,
    in_flight: u64,
    cache_hits: u64,
    cache_misses: u64,
    phases: Vec<Hist>,
}

impl Inner {
    fn hist(&mut self, phase: &str) -> &mut Hist {
        if let Some(i) = self.phases.iter().position(|h| h.phase == phase) {
            return &mut self.phases[i];
        }
        self.phases.push(Hist::new(phase));
        self.phases.last_mut().expect("just pushed")
    }
}

/// Cache statistics snapshot passed into [`Metrics::to_json`] (the caches
/// live outside the metrics lock).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Maximum entries retained (`0` = unbounded).
    pub capacity: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

/// The daemon's counters; shared by every connection and worker thread.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Poison recovery: every update is a batch of integer increments —
    /// no partial state can leak from a panicking thread.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A `/compile` request answered straight from the result cache.
    pub fn request_cache_hit(&self) {
        self.request_cache_hits(1);
    }

    /// `n` compile units (batch entries count individually) answered from
    /// a cache tier — in-memory or disk.
    pub fn request_cache_hits(&self, n: u64) {
        let mut m = self.lock();
        m.received += n;
        m.cache_hits += n;
        m.completed += n;
    }

    /// A cache-missing `/compile` request accepted into the queue.
    pub fn request_enqueued(&self) {
        self.request_enqueued_n(1);
    }

    /// `n` cache-missing compile units accepted into the queue. A batch
    /// occupies *one* queue slot but counts each entry here — the metrics
    /// `queue.depth` is in requests, not jobs.
    pub fn request_enqueued_n(&self, n: u64) {
        let mut m = self.lock();
        m.received += n;
        m.cache_misses += n;
        m.queued += n;
    }

    /// A cache-missing `/compile` request shed (queue full or draining).
    pub fn request_shed(&self) {
        let mut m = self.lock();
        m.received += 1;
        m.cache_misses += 1;
        m.shed += 1;
    }

    /// A request counted by [`Metrics::request_enqueued`] that bounced off
    /// a full (or draining) queue: queued → shed. The enqueue is accounted
    /// *before* the push so a worker popping the job immediately cannot
    /// decrement `queued` below zero; a refused push is then rolled back
    /// here.
    pub fn request_shed_after_enqueue(&self) {
        self.request_shed_after_enqueue_n(1);
    }

    /// `n` enqueued-then-refused compile units: queued → shed, see
    /// [`Metrics::request_shed_after_enqueue`].
    pub fn request_shed_after_enqueue_n(&self, n: u64) {
        let mut m = self.lock();
        m.queued -= n;
        m.shed += n;
    }

    /// `n` compile units rejected by the per-tenant quota gate (`429`) —
    /// a terminal state of its own so admission pressure is visible
    /// without polluting the shed (overload) counter.
    pub fn request_quota_rejected(&self, n: u64) {
        let mut m = self.lock();
        m.received += n;
        m.quota_rejected += n;
    }

    /// A worker popped a job: queued → in-flight.
    pub fn job_started(&self) {
        self.batch_started(1);
    }

    /// A worker popped a batch of `n` compile units: queued → in-flight
    /// for each. Entries then settle individually via
    /// [`Metrics::job_completed`] / [`Metrics::job_failed`] /
    /// [`Metrics::job_cancelled`].
    pub fn batch_started(&self, n: u64) {
        let mut m = self.lock();
        m.queued -= n;
        m.in_flight += n;
    }

    /// An in-flight job finished successfully; `phase_ns` are the
    /// per-phase durations folded into the latency histograms.
    pub fn job_completed(&self, phase_ns: &[(&str, u64)]) {
        let mut m = self.lock();
        m.in_flight -= 1;
        m.completed += 1;
        for &(phase, ns) in phase_ns {
            m.hist(phase).add(ns);
        }
    }

    /// An in-flight job hit its deadline (or the drain) and was cancelled.
    pub fn job_cancelled(&self) {
        let mut m = self.lock();
        m.in_flight -= 1;
        m.cancelled += 1;
    }

    /// An in-flight job failed (infeasible input, mapping exhaustion, …).
    pub fn job_failed(&self) {
        let mut m = self.lock();
        m.in_flight -= 1;
        m.failed += 1;
    }

    /// Jobs currently waiting or running — the drain loop's exit check.
    pub fn pending(&self) -> u64 {
        let m = self.lock();
        m.queued + m.in_flight
    }

    /// Renders the `panorama-serve-metrics-v1` document. `queue_capacity`
    /// and the cache statistics come from the structures that own them;
    /// `disk_cache` is all-zero when the daemon runs without `--cache-dir`
    /// and `quota.enabled` is `false` without `--quota-burst` (the rows
    /// are always present so the lint shape check stays unconditional).
    pub fn to_json(
        &self,
        queue_capacity: usize,
        mut result_cache: CacheStats,
        mrrg_cache: CacheStats,
        warm_cache: CacheStats,
        disk_cache: DiskCacheStats,
        quota: &QuotaStats,
    ) -> String {
        let m = self.lock();
        // Result-cache lookups are tallied here (they take part in the
        // conservation invariant); the cache only knows its occupancy.
        result_cache.hits = m.cache_hits;
        result_cache.misses = m.cache_misses;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"schema\":\"{METRICS_SCHEMA}\",\
             \"queue\":{{\"depth\":{},\"capacity\":{queue_capacity},\"in_flight\":{}}},\
             \"requests\":{{\"received\":{},\"completed\":{},\"shed\":{},\"cancelled\":{},\"failed\":{},\"quota_rejected\":{}}}",
            m.queued,
            m.in_flight,
            m.received,
            m.completed,
            m.shed,
            m.cancelled,
            m.failed,
            m.quota_rejected,
        );
        for (name, c) in [
            ("result_cache", &result_cache),
            ("mrrg_cache", &mrrg_cache),
            ("warm_cache", &warm_cache),
        ] {
            let _ = write!(
                s,
                ",\"{name}\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"capacity\":{},\"evictions\":{}}}",
                c.hits, c.misses, c.entries, c.capacity, c.evictions,
            );
        }
        let _ = write!(
            s,
            ",\"disk_cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"capacity\":{},\"evictions\":{},\"bytes\":{},\"corrupt\":{}}}",
            disk_cache.hits,
            disk_cache.misses,
            disk_cache.entries,
            disk_cache.capacity,
            disk_cache.evictions,
            disk_cache.bytes,
            disk_cache.corrupt,
        );
        let _ = write!(
            s,
            ",\"quota\":{{\"enabled\":{},\"rps\":{},\"burst\":{},\"rejected\":{},\"tenants\":[",
            quota.enabled, quota.rps, quota.burst, m.quota_rejected,
        );
        for (i, t) in quota.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"tenant\":\"{}\",\"admitted\":{},\"rejected\":{},\"tokens\":{}}}",
                panorama_trace::json::escape(&t.tenant),
                t.admitted,
                t.rejected,
                t.tokens,
            );
        }
        s.push_str("]}");
        s.push_str(",\"phases\":[");
        let mut phases: Vec<&Hist> = m.phases.iter().collect();
        phases.sort_by(|a, b| a.phase.cmp(&b.phase));
        for (i, h) in phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"phase\":\"{}\",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                panorama_trace::json::escape(&h.phase),
                h.count,
                h.total_ns,
                h.percentile_ns(50),
                h.percentile_ns(90),
                h.percentile_ns(99),
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panorama_trace::json;

    fn counters(doc: &json::Json) -> (u64, u64) {
        let req = doc.get("requests").unwrap();
        let get = |k: &str| req.get(k).unwrap().as_f64().unwrap() as u64;
        let q = doc.get("queue").unwrap();
        let flows = get("completed")
            + get("shed")
            + get("cancelled")
            + get("failed")
            + get("quota_rejected");
        let held = q.get("depth").unwrap().as_f64().unwrap() as u64
            + q.get("in_flight").unwrap().as_f64().unwrap() as u64;
        (get("received"), flows + held)
    }

    fn render(m: &Metrics) -> String {
        m.to_json(
            4,
            CacheStats::default(),
            CacheStats::default(),
            CacheStats::default(),
            DiskCacheStats::default(),
            &QuotaStats::default(),
        )
    }

    #[test]
    fn conservation_holds_through_every_transition() {
        let m = Metrics::new();
        let check = |m: &Metrics| {
            let doc = json::parse(&render(m)).expect("metrics JSON parses");
            let (received, accounted) = counters(&doc);
            assert_eq!(received, accounted);
        };
        check(&m);
        m.request_cache_hit();
        check(&m);
        m.request_enqueued();
        check(&m);
        m.request_shed();
        check(&m);
        m.job_started();
        check(&m);
        m.job_completed(&[("map", 1_000_000), ("preflight", 5_000)]);
        check(&m);
        m.request_enqueued();
        m.job_started();
        m.job_cancelled();
        check(&m);
        m.request_enqueued();
        m.job_started();
        m.job_failed();
        check(&m);
        m.request_quota_rejected(3);
        check(&m);
    }

    #[test]
    fn batch_accounting_conserves_per_entry() {
        let m = Metrics::new();
        // A 5-entry batch: 2 hits, 3 misses enqueued as one job.
        m.request_cache_hits(2);
        m.request_enqueued_n(3);
        let doc = json::parse(&render(&m)).unwrap();
        let (received, accounted) = counters(&doc);
        assert_eq!((received, accounted), (5, 5));
        m.batch_started(3);
        m.job_completed(&[("map", 100)]);
        m.job_failed();
        m.job_cancelled();
        let doc = json::parse(&render(&m)).unwrap();
        let (received, accounted) = counters(&doc);
        assert_eq!((received, accounted), (5, 5));
        // A refused batch push rolls all entries back to shed.
        m.request_enqueued_n(4);
        m.request_shed_after_enqueue_n(4);
        let doc = json::parse(&render(&m)).unwrap();
        let (received, accounted) = counters(&doc);
        assert_eq!((received, accounted), (9, 9));
    }

    #[test]
    fn disk_and_quota_rows_render() {
        let m = Metrics::new();
        m.request_quota_rejected(2);
        let disk = DiskCacheStats {
            hits: 3,
            misses: 1,
            entries: 3,
            capacity: 1024,
            evictions: 0,
            bytes: 300,
            corrupt: 1,
        };
        let quota = QuotaStats {
            enabled: true,
            rps: 5,
            burst: 10,
            tenants: vec![crate::quota::TenantStats {
                tenant: "alice".to_string(),
                admitted: 7,
                rejected: 2,
                tokens: 3,
            }],
        };
        let doc = json::parse(&m.to_json(
            4,
            CacheStats::default(),
            CacheStats::default(),
            CacheStats::default(),
            disk,
            &quota,
        ))
        .unwrap();
        let d = doc.get("disk_cache").unwrap();
        assert_eq!(d.get("bytes").unwrap().as_f64().unwrap() as u64, 300);
        assert_eq!(d.get("corrupt").unwrap().as_f64().unwrap() as u64, 1);
        let q = doc.get("quota").unwrap();
        assert!(q.get("enabled").unwrap().as_bool().unwrap());
        assert_eq!(q.get("rejected").unwrap().as_f64().unwrap() as u64, 2);
        let tenants = q.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants[0].get("tenant").unwrap().as_str().unwrap(), "alice");
    }

    #[test]
    fn percentiles_are_ordered_and_bucketed() {
        let mut h = Hist::new("map");
        for ns in [100, 200, 400, 800, 100_000] {
            h.add(ns);
        }
        let (p50, p90, p99) = (
            h.percentile_ns(50),
            h.percentile_ns(90),
            h.percentile_ns(99),
        );
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // p50 falls in the bucket holding 400 (256..=511)
        assert_eq!(p50, 511);
        // p99 falls in the bucket holding 100_000
        assert!(p99 >= 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Hist::new("x");
        assert_eq!(h.percentile_ns(99), 0);
    }

    #[test]
    fn schema_and_phases_render() {
        let m = Metrics::new();
        m.request_enqueued();
        m.job_started();
        m.job_completed(&[("preflight", 10), ("map", 20)]);
        let doc = json::parse(&render(&m)).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), METRICS_SCHEMA);
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        let names: Vec<&str> = phases
            .iter()
            .map(|p| p.get("phase").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["map", "preflight"]); // sorted
    }
}
