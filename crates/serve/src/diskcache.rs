//! Persistent on-disk content-addressed result cache.
//!
//! Layered *under* the in-memory [`crate::ResultCache`]: a daemon restart
//! loses the process, not the corpus of compiled responses. The layout is
//! append-friendly — one file per entry, named by the 64-bit FNV content
//! key — so inserts never rewrite existing entries and a crash can at
//! worst leave one partial temp file behind (writes go to a `.tmp` and
//! are renamed into place).
//!
//! Every entry is integrity-checked: a header line carries the key, the
//! body length and an FNV-1a checksum of the body, and both load-time
//! scans and per-request reads re-verify all three. A corrupt or
//! truncated entry is *dropped* (deleted and recompiled), never served —
//! the daemon's byte-stable-response guarantee extends across restarts.
//!
//! Eviction is LRU under a byte-size budget: recency is a tick-ordered
//! index exactly like the in-memory cache's, and the sum of body bytes
//! never exceeds the budget (`0` = unbounded). On open, entries are
//! seeded oldest-first by file modification time so a restarted daemon
//! keeps the same eviction order it would have had.

use crate::cache::ContentHash;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Magic/version tag opening every entry file's header line.
const MAGIC: &str = "panorama-disk-cache-v1";

/// Extension of committed entry files (temp files use `.tmp`).
const ENTRY_EXT: &str = "entry";

/// Counters and occupancy of a [`DiskCache`], snapshotted for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Lookups answered from disk (integrity check passed).
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Byte budget (`0` = unbounded).
    pub capacity: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Body bytes currently resident.
    pub bytes: u64,
    /// Corrupt or truncated entries dropped (at open or on read).
    pub corrupt: u64,
}

struct DiskSlot {
    len: u64,
    last_used: u64,
}

struct Inner {
    slots: HashMap<u64, DiskSlot>,
    /// `last_used tick -> key`, the LRU order (see [`crate::ResultCache`]).
    order: BTreeMap<u64, u64>,
    tick: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    corrupt: u64,
}

/// A restart-surviving result cache: one integrity-checked file per
/// content key, LRU-evicted under a byte budget.
pub struct DiskCache {
    dir: PathBuf,
    budget: u64,
    inner: Mutex<Inner>,
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory and indexes every
    /// valid entry, dropping corrupt or truncated ones. `budget` bounds
    /// the resident body bytes (`0` = unbounded); existing entries beyond
    /// the budget are evicted oldest-modification-first.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures. Individual unreadable
    /// entries are dropped, not fatal.
    pub fn open(dir: impl Into<PathBuf>, budget: u64) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut inner = Inner {
            slots: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            corrupt: 0,
        };
        // Seed LRU order deterministically: oldest mtime first, key as
        // the tie-break. Leftover temp files from a crashed writer are
        // removed on sight.
        let mut found: Vec<(u128, u64, u64)> = Vec::new(); // (mtime_ns, key, len)
        for dirent in fs::read_dir(&dir)? {
            let dirent = dirent?;
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                let _ = fs::remove_file(&path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let Some(key) = key_of(&path) else {
                inner.corrupt += 1;
                let _ = fs::remove_file(&path);
                continue;
            };
            match read_entry(&path, key) {
                Some(body) => {
                    let mtime = dirent
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                        .map_or(0, |d| d.as_nanos());
                    found.push((mtime, key, body.len() as u64));
                }
                None => {
                    inner.corrupt += 1;
                    let _ = fs::remove_file(&path);
                }
            }
        }
        found.sort_unstable();
        for (_, key, len) in found {
            inner.tick += 1;
            let tick = inner.tick;
            inner.slots.insert(
                key,
                DiskSlot {
                    len,
                    last_used: tick,
                },
            );
            inner.order.insert(tick, key);
            inner.bytes += len;
        }
        let cache = DiskCache {
            dir,
            budget,
            inner: Mutex::new(inner),
        };
        cache.evict_over_budget(&mut cache.lock());
        Ok(cache)
    }

    /// Poison recovery: index mutations are completed whole under the
    /// lock; a panicking reader leaves valid state.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{ENTRY_EXT}"))
    }

    /// The cached response for `key`, re-verified against its checksum.
    /// A corrupt entry is deleted and reported as a miss — the caller
    /// recompiles and re-inserts.
    pub fn get(&self, key: u64) -> Option<String> {
        let mut inner = self.lock();
        if !inner.slots.contains_key(&key) {
            inner.misses += 1;
            return None;
        }
        match read_entry(&self.path_of(key), key) {
            Some(body) => {
                inner.tick += 1;
                let tick = inner.tick;
                let slot = inner.slots.get_mut(&key).expect("checked resident");
                let prev = std::mem::replace(&mut slot.last_used, tick);
                inner.order.remove(&prev);
                inner.order.insert(tick, key);
                inner.hits += 1;
                Some(body)
            }
            None => {
                // Truncated or bit-flipped on disk: drop, never serve.
                let slot = inner.slots.remove(&key).expect("checked resident");
                inner.order.remove(&slot.last_used);
                inner.bytes = inner.bytes.saturating_sub(slot.len);
                inner.corrupt += 1;
                inner.misses += 1;
                let _ = fs::remove_file(self.path_of(key));
                None
            }
        }
    }

    /// Persists a response under `key` (write-to-temp + rename, so a
    /// concurrent crash never leaves a half-written committed entry),
    /// then evicts least-recently-used entries past the byte budget. An
    /// I/O failure skips the insert silently — the disk tier is an
    /// optimization, not a correctness dependency.
    pub fn insert(&self, key: u64, body: &str) {
        let mut inner = self.lock();
        let header = format!(
            "{MAGIC} {key:016x} {} {:016x}\n",
            body.len(),
            checksum(body)
        );
        let tmp = self.dir.join(format!("{key:016x}.tmp"));
        let write = fs::write(&tmp, format!("{header}{body}"))
            .and_then(|()| fs::rename(&tmp, self.path_of(key)));
        if write.is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let len = body.len() as u64;
        if let Some(old) = inner.slots.insert(
            key,
            DiskSlot {
                len,
                last_used: tick,
            },
        ) {
            inner.order.remove(&old.last_used);
            inner.bytes = inner.bytes.saturating_sub(old.len);
        }
        inner.order.insert(tick, key);
        inner.bytes += len;
        self.evict_over_budget(&mut inner);
    }

    fn evict_over_budget(&self, inner: &mut Inner) {
        if self.budget == 0 {
            return;
        }
        while inner.bytes > self.budget {
            let Some((_, victim)) = inner.order.pop_first() else {
                break;
            };
            let slot = inner.slots.remove(&victim).expect("indexed key resident");
            inner.bytes = inner.bytes.saturating_sub(slot.len);
            inner.evictions += 1;
            let _ = fs::remove_file(self.path_of(victim));
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte budget (`0` = unbounded).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Counter and occupancy snapshot for `/metrics`.
    pub fn stats(&self) -> DiskCacheStats {
        let inner = self.lock();
        DiskCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.slots.len() as u64,
            capacity: self.budget,
            evictions: inner.evictions,
            bytes: inner.bytes,
            corrupt: inner.corrupt,
        }
    }
}

/// FNV-1a over the body, framed exactly like the request key hash.
fn checksum(body: &str) -> u64 {
    ContentHash::new().chunk(body).finish()
}

/// The key a committed entry file claims via its name, or `None` for a
/// name this cache never wrote.
fn key_of(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// Reads and fully validates one entry file: magic, in-header key matching
/// the filename, exact body length, and checksum. `None` on any mismatch.
fn read_entry(path: &Path, key: u64) -> Option<String> {
    let raw = fs::read_to_string(path).ok()?;
    let (header, body) = raw.split_once('\n')?;
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return None;
    }
    let header_key = u64::from_str_radix(fields.next()?, 16).ok()?;
    let len: usize = fields.next()?.parse().ok()?;
    let sum = u64::from_str_radix(fields.next()?, 16).ok()?;
    if fields.next().is_some() || header_key != key || body.len() != len || checksum(body) != sum {
        return None;
    }
    Some(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("panorama-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let cache = DiskCache::open(&dir, 0).unwrap();
            cache.insert(42, "{\"ii\":3}\n");
            assert_eq!(cache.get(42).as_deref(), Some("{\"ii\":3}\n"));
        }
        // A fresh process sees the same bytes.
        let cache = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(42).as_deref(), Some("{\"ii\":3}\n"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt), (1, 0, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_dropped_not_served() {
        let dir = temp_dir("truncate");
        let cache = DiskCache::open(&dir, 0).unwrap();
        cache.insert(7, "a perfectly valid response body\n");
        drop(cache);
        // Truncate the committed file mid-body.
        let path = dir.join(format!("{:016x}.{ENTRY_EXT}", 7u64));
        let raw = fs::read_to_string(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        let cache = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(cache.len(), 0, "truncated entry must not be indexed");
        assert_eq!(cache.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt file is deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_detected_on_read() {
        let dir = temp_dir("bitflip");
        let cache = DiskCache::open(&dir, 0).unwrap();
        cache.insert(9, "response-body-here\n");
        let path = dir.join(format!("{:016x}.{ENTRY_EXT}", 9u64));
        let raw = fs::read_to_string(&path).unwrap();
        fs::write(&path, raw.replace("body", "BODY")).unwrap();
        assert_eq!(cache.get(9), None, "checksum mismatch must not serve");
        assert_eq!(cache.stats().corrupt, 1);
        assert_eq!(cache.len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let dir = temp_dir("budget");
        let cache = DiskCache::open(&dir, 30).unwrap();
        cache.insert(1, "aaaaaaaaaa"); // 10 bytes
        cache.insert(2, "bbbbbbbbbb");
        cache.insert(3, "cccccccccc");
        assert_eq!(cache.len(), 3);
        // Refresh 1, insert 4: 2 is now LRU and must go.
        assert!(cache.get(1).is_some());
        cache.insert(4, "dddddddddd");
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(2), None);
        assert!(cache.get(1).is_some());
        assert!(cache.get(4).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_respects_budget_and_drops_temp_files() {
        let dir = temp_dir("reopen-budget");
        {
            let cache = DiskCache::open(&dir, 0).unwrap();
            for key in 0..4u64 {
                cache.insert(key, "xxxxxxxxxx");
                // mtime-ordered seed needs distinct timestamps
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        fs::write(dir.join("dead.tmp"), "partial write").unwrap();
        let cache = DiskCache::open(&dir, 25).unwrap();
        assert_eq!(cache.len(), 2, "oldest entries evicted to fit budget");
        assert!(cache.get(3).is_some(), "newest survives");
        assert_eq!(cache.get(0), None, "oldest evicted");
        assert!(!dir.join("dead.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
