//! The compile daemon: accept loop, worker pool, deadline watchdog, and
//! graceful drain.
//!
//! ```text
//! connection threads          bounded JobQueue          worker pool
//!   parse HTTP+JSON  ──try_push──▶ [ jobs … ] ──pop──▶ compile_traced
//!   (503 on full)                                       _with_cancel
//!        ▲                                                   │
//!        └────────────── mpsc response channel ◀─────────────┘
//! ```
//!
//! Request lifecycle invariants:
//!
//! * every `/compile` request lands in exactly one terminal counter
//!   (completed / shed / cancelled / failed) — see [`crate::metrics`];
//! * a full queue never grows: excess load is shed with `503` and
//!   `Retry-After`, so memory use is bounded by `queue_depth` plus the
//!   worker count regardless of offered load;
//! * deadlines are enforced by a watchdog that fires each job's
//!   [`CancelToken`]; the pipeline stops cooperatively at its next II
//!   iteration or PathFinder round, never mid-write;
//! * drain (`POST /admin/shutdown`, loopback-only) stops accepting,
//!   lets queued and in-flight jobs finish, folds their trace collectors
//!   into the metrics, then returns from [`Server::run`] — the process
//!   exits `0`.

use crate::cache::{ContentHash, ResultCache};
use crate::diskcache::{DiskCache, DiskCacheStats};
use crate::http::{read_request, write_response, Request};
use crate::metrics::{CacheStats, Metrics};
use crate::queue::JobQueue;
use crate::quota::{Quota, TENANT_HEADER};
use panorama::{BatchExecutor, CompileReport, Panorama, PanoramaConfig, PanoramaError};
use panorama_arch::{Cgra, CgraConfig, DEFAULT_MRRG_CACHE_CAPACITY};
use panorama_dfg::{kernels, Dfg, KernelId, KernelScale};
use panorama_lint::{Diagnostics, LintContext, Registry};
use panorama_mapper::{
    CancelToken, ExactMapper, LowerLevelMapper, SatMapper, SprMapper, UltraFastMapper,
    WarmStartCache,
};
use panorama_trace::json::{escape, parse, Json};
use panorama_trace::{phase_totals, RecordingSink, Tracer};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Schema identifier of error payloads.
pub const ERROR_SCHEMA: &str = "panorama-error-v1";

/// Schema identifier of `/compile-batch` response envelopes.
pub const BATCH_SCHEMA: &str = "panorama-serve-batch-v1";

/// Hard cap on `/compile-batch` entries per request: bounds worst-case
/// memory and keeps one batch from monopolising the queue.
pub const MAX_BATCH_ENTRIES: usize = 64;

/// Daemon tunables; every knob maps to a `panorama serve` flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Compile worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds with `503`.
    pub queue_depth: usize,
    /// Per-request compile deadline; `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Completed compile responses retained for replay.
    pub result_cache_capacity: usize,
    /// Per-architecture MRRG cache bound (see
    /// [`panorama_arch::MrrgCache`]).
    pub mrrg_cache_capacity: usize,
    /// Portfolio threads per compile job (the job-level parallelism
    /// already comes from `workers`; results are bit-identical for any
    /// value).
    pub portfolio_threads: usize,
    /// Run the pre-mapping DFG optimizer on every compile that does not
    /// say otherwise (a request's `analyze` field overrides this
    /// default). Off by default so responses stay bit-stable.
    pub analyze: bool,
    /// Enable the warm-start remap tier: SPR\* compiles share a
    /// [`WarmStartCache`], so a kernel within a small structural delta of
    /// a previously compiled one is remapped from the prior placement and
    /// router history instead of from scratch. Off by default because a
    /// warm-seeded search may legitimately land on a different (equally
    /// verified) mapping than a cold one, trading the daemon's
    /// byte-stable-response guarantee for recompile latency.
    pub warm_cache: bool,
    /// Directory of the persistent result cache; `None` keeps results
    /// in-memory only (lost on restart). With a directory, completed
    /// responses are layered onto disk and a restarted daemon replays
    /// them byte-identically.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Byte budget of the disk cache (`0` = unbounded).
    pub cache_budget: u64,
    /// Per-tenant quota refill rate, tokens per second.
    pub quota_rps: u64,
    /// Per-tenant quota bucket capacity; `0` disables admission control.
    pub quota_burst: u64,
    /// Per-socket read/write timeout; a client that stalls mid-request
    /// (slow-loris) gets a `400` instead of holding a connection thread
    /// forever. `None` disables the timeouts.
    pub io_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            deadline: None,
            result_cache_capacity: 256,
            mrrg_cache_capacity: DEFAULT_MRRG_CACHE_CAPACITY,
            portfolio_threads: 1,
            analyze: false,
            warm_cache: false,
            cache_dir: None,
            cache_budget: 0,
            quota_rps: 0,
            quota_burst: 0,
            io_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// A parsed, validated `/compile` request.
struct CompileRequest {
    dfg: Dfg,
    arch_display: String,
    arch_config: CgraConfig,
    mapper: String,
    baseline: bool,
    max_ii: Option<usize>,
    /// Per-request portfolio-thread override; `None` falls back to the
    /// daemon's `--threads` (results are bit-identical either way).
    threads: Option<usize>,
    deadline: Option<Duration>,
    /// Resolved at parse time: the request's `analyze` field, falling
    /// back to the daemon's `--analyze` default.
    analyze: bool,
}

/// What a worker sends back to the waiting connection thread.
struct JobOutcome {
    status: u16,
    body: String,
}

/// One queued unit of work: a single compile or a whole batch (a batch
/// occupies one queue slot; its entries fan out on the [`BatchExecutor`]
/// inside the worker that pops it).
enum Job {
    // Boxed: a CompileRequest is hundreds of bytes, a BatchJob a few
    // pointers, and jobs move through the queue by value.
    Single(Box<SingleJob>),
    Batch(BatchJob),
}

/// One queued compile.
struct SingleJob {
    request: CompileRequest,
    key: u64,
    cancel: CancelToken,
    done: Arc<AtomicBool>,
    respond: mpsc::Sender<JobOutcome>,
}

/// One cache-missing `/compile-batch` entry, tagged with its position in
/// the request's `entries` array.
struct BatchEntry {
    index: usize,
    request: CompileRequest,
    key: u64,
}

/// The cache-missing remainder of one `/compile-batch` request.
struct BatchJob {
    entries: Vec<BatchEntry>,
    cancel: CancelToken,
    done: Arc<AtomicBool>,
    respond: mpsc::Sender<Vec<(usize, JobOutcome)>>,
}

/// A deadline the watchdog enforces.
struct WatchEntry {
    deadline: Instant,
    cancel: CancelToken,
    done: Arc<AtomicBool>,
}

struct State {
    config: ServeConfig,
    queue: JobQueue<Job>,
    metrics: Metrics,
    results: ResultCache,
    /// Shared `Cgra` per architecture, so every request against the same
    /// architecture reuses one MRRG cache. Keyed by the canonical ADL
    /// text; bounded crudely (cleared past 16 architectures — a daemon
    /// serves a handful).
    cgras: Mutex<HashMap<String, Cgra>>,
    /// Warm-start tier shared by every SPR\* compile; `None` when the
    /// daemon runs with bit-stable responses (the default).
    warm: Option<WarmStartCache>,
    /// Persistent result tier under the in-memory cache; `None` without
    /// `--cache-dir`.
    disk: Option<DiskCache>,
    /// Per-tenant admission control; disabled unless `--quota-burst` > 0.
    quota: Quota,
    watch: Mutex<Vec<WatchEntry>>,
    draining: AtomicBool,
    stopped: AtomicBool,
    addr: SocketAddr,
    connections: Mutex<usize>,
    connections_drained: Condvar,
}

impl State {
    fn cgra_for(&self, config: &CgraConfig) -> Result<Cgra, String> {
        let key = config.to_text();
        let mut cgras = self.cgras.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cgra) = cgras.get(&key) {
            return Ok(cgra.clone());
        }
        let cgra = Cgra::new(config.clone()).map_err(|e| e.to_string())?;
        cgra.mrrg_cache()
            .set_capacity(self.config.mrrg_cache_capacity);
        if cgras.len() >= 16 {
            cgras.clear();
        }
        cgras.insert(key, cgra.clone());
        Ok(cgra)
    }

    fn mrrg_stats(&self) -> CacheStats {
        let cgras = self.cgras.lock().unwrap_or_else(PoisonError::into_inner);
        let mut stats = CacheStats {
            capacity: self.config.mrrg_cache_capacity as u64,
            ..CacheStats::default()
        };
        for cgra in cgras.values() {
            let c = cgra.mrrg_cache();
            stats.hits += c.hits();
            stats.misses += c.misses();
            stats.entries += c.len() as u64;
            stats.evictions += c.evictions();
        }
        stats
    }

    fn warm_stats(&self) -> CacheStats {
        match &self.warm {
            None => CacheStats::default(),
            Some(cache) => CacheStats {
                hits: cache.hits(),
                misses: cache.misses(),
                entries: cache.len() as u64,
                capacity: cache.capacity() as u64,
                evictions: cache.evictions(),
            },
        }
    }

    fn result_stats(&self) -> CacheStats {
        // hits/misses live in Metrics (folded into the conservation
        // invariant); the cache itself only knows occupancy.
        CacheStats {
            entries: self.results.len() as u64,
            capacity: self.results.capacity() as u64,
            ..CacheStats::default()
        }
    }

    fn disk_stats(&self) -> DiskCacheStats {
        self.disk.as_ref().map(DiskCache::stats).unwrap_or_default()
    }

    /// The two-tier cache lookup: memory first, then disk (promoting a
    /// disk hit into memory so the next lookup is cheap). Either tier
    /// satisfies the byte-identical-replay guarantee.
    fn cached_response(&self, key: u64) -> Option<String> {
        if let Some(body) = self.results.get(key) {
            return Some(body);
        }
        let body = self.disk.as_ref()?.get(key)?;
        self.results.insert(key, body.clone());
        Some(body)
    }

    /// Stores a completed response in both tiers.
    fn store_response(&self, key: u64, body: &str) {
        self.results.insert(key, body.to_string());
        if let Some(disk) = &self.disk {
            disk.insert(key, body);
        }
    }
}

/// A handle that can trigger the graceful drain from another thread (the
/// CLI's stdin watcher, tests).
#[derive(Clone)]
pub struct DrainHandle {
    state: Arc<State>,
}

impl DrainHandle {
    /// Initiates the drain: stop accepting, finish queued and in-flight
    /// jobs, then [`Server::run`] returns. Idempotent.
    pub fn drain(&self) {
        initiate_drain(&self.state);
    }
}

fn initiate_drain(state: &Arc<State>) {
    if state.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the accept loop so it observes the flag. The dummy
    // connection is dropped unserved, which is fine — we are the server.
    let _ = TcpStream::connect(state.addr);
}

/// The bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener (so the port is known before serving starts).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let disk = match &config.cache_dir {
            None => None,
            Some(dir) => Some(DiskCache::open(dir, config.cache_budget)?),
        };
        let state = Arc::new(State {
            queue: JobQueue::new(config.queue_depth),
            metrics: Metrics::new(),
            results: ResultCache::new(config.result_cache_capacity),
            cgras: Mutex::new(HashMap::new()),
            warm: config.warm_cache.then(WarmStartCache::default),
            disk,
            quota: Quota::new(config.quota_rps, config.quota_burst),
            watch: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            addr,
            connections: Mutex::new(0),
            connections_drained: Condvar::new(),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A handle that can drain the server from another thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until drained, then returns. See the module docs for the
    /// drain ordering.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures that indicate a dead listener.
    pub fn run(self) -> io::Result<()> {
        let state = self.state;
        let workers: Vec<_> = (0..state.config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        let watchdog = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || watchdog_loop(&state))
        };

        for stream in self.listener.incoming() {
            if state.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Slow-loris guard: a peer that stalls mid-read or mid-write
            // trips the socket timeout instead of pinning this thread.
            if let Some(t) = state.config.io_timeout {
                let _ = stream.set_read_timeout(Some(t));
                let _ = stream.set_write_timeout(Some(t));
            }
            {
                let mut n = state
                    .connections
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                *n += 1;
            }
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                handle_connection(&state, stream);
                let mut n = state
                    .connections
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                *n -= 1;
                if *n == 0 {
                    state.connections_drained.notify_all();
                }
            });
        }

        // Drain: new pushes are refused, queued jobs still pop.
        state.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        // Connection threads finish once their job responses arrive (all
        // workers have exited, so every response has been sent).
        {
            let mut n = state
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            while *n > 0 {
                n = state
                    .connections_drained
                    .wait(n)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        state.stopped.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        // Every per-job trace collector has been folded into the metrics
        // synchronously at job completion; nothing is buffered past this
        // point, so returning here *is* the flush.
        Ok(())
    }
}

/// Cancels tokens whose deadline passed; prunes finished entries.
fn watchdog_loop(state: &Arc<State>) {
    while !state.stopped.load(Ordering::SeqCst) {
        {
            let mut watch = state.watch.lock().unwrap_or_else(PoisonError::into_inner);
            let now = Instant::now();
            watch.retain(|entry| {
                if entry.done.load(Ordering::Acquire) {
                    return false;
                }
                if now >= entry.deadline {
                    entry.cancel.cancel();
                    return false;
                }
                true
            });
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn worker_loop(state: &Arc<State>) {
    while let Some(job) = state.queue.pop() {
        match job {
            Job::Single(job) => {
                state.metrics.job_started();
                let outcome = run_job(state, &job);
                job.done.store(true, Ordering::Release);
                // A disappeared client is not an error; the job's effects
                // (metrics, result cache) already landed.
                let _ = job.respond.send(outcome);
            }
            Job::Batch(job) => {
                state.metrics.batch_started(job.entries.len() as u64);
                let outcomes = run_batch_job(state, &job);
                job.done.store(true, Ordering::Release);
                let _ = job.respond.send(outcomes);
            }
        }
    }
}

/// Runs one batch's cache-missing entries, fanning them out on a
/// [`BatchExecutor`] scope sized by the daemon's portfolio-thread budget.
/// Each entry goes through *exactly* the single-compile routine
/// ([`run_compile`]), so a batch result is bit-identical to the same
/// request sent to `/compile` — the executor only changes the schedule,
/// never the bytes.
fn run_batch_job(state: &Arc<State>, job: &BatchJob) -> Vec<(usize, JobOutcome)> {
    let outcomes = BatchExecutor::scope(state.config.portfolio_threads, |exec| {
        exec.run_batch(job.entries.len(), |_, i| {
            let entry = &job.entries[i];
            run_compile(state, &entry.request, entry.key, &job.cancel)
        })
    });
    job.entries.iter().map(|e| e.index).zip(outcomes).collect()
}

/// Compiles one job; returns the HTTP outcome and settles the metrics.
fn run_job(state: &Arc<State>, job: &SingleJob) -> JobOutcome {
    run_compile(state, &job.request, job.key, &job.cancel)
}

/// Compiles one request (a `/compile` job or one `/compile-batch` entry);
/// returns the HTTP outcome and settles that unit's metrics. The caller
/// has already moved the unit to in-flight.
fn run_compile(
    state: &Arc<State>,
    req: &CompileRequest,
    key: u64,
    cancel: &CancelToken,
) -> JobOutcome {
    let started = Instant::now();
    if cancel.is_cancelled() {
        // Deadline expired while the job sat in the queue.
        state.metrics.job_cancelled();
        return error_outcome(504, "cancelled", "deadline exceeded before compile started");
    }
    let cgra = match state.cgra_for(&req.arch_config) {
        Ok(cgra) => cgra,
        Err(e) => {
            state.metrics.job_failed();
            return error_outcome(422, "bad_arch", &e);
        }
    };
    let compiler = Panorama::new(PanoramaConfig {
        max_ii: req.max_ii,
        threads: req.threads.unwrap_or(state.config.portfolio_threads),
        analyze: req.analyze.then(panorama::AnalyzeConfig::default),
        ..PanoramaConfig::default()
    });
    let sink = RecordingSink::shared();
    let tracer = Tracer::new(sink.clone());
    let run = |m: &dyn LowerLevelMapper| {
        let shim = DynMapper(m);
        if req.baseline {
            compiler.compile_baseline_traced_with_cancel(
                &req.dfg,
                &cgra,
                &shim,
                &tracer,
                Some(cancel),
            )
        } else {
            compiler.compile_traced_with_cancel(&req.dfg, &cgra, &shim, &tracer, Some(cancel))
        }
    };
    let result: Result<CompileReport, PanoramaError> = match req.mapper.as_str() {
        // The warm tier only helps SPR*: it is the one mapper that can
        // seed its placement and router history from a prior mapping.
        "spr" => match &state.warm {
            Some(cache) => run(&SprMapper::default().with_warm_cache(cache.clone())),
            None => run(&SprMapper::default()),
        },
        "ultrafast" => run(&UltraFastMapper::default()),
        "exhaustive" => run(&ExactMapper::default()),
        "sat" => run(&SatMapper::default()),
        other => {
            state.metrics.job_failed();
            return error_outcome(400, "bad_mapper", &format!("unknown mapper `{other}`"));
        }
    };
    match result {
        Ok(report) => {
            if let Err(e) = report.mapping().verify(report.mapped_dfg(&req.dfg), &cgra) {
                state.metrics.job_failed();
                return error_outcome(422, "verify_failed", &e.to_string());
            }
            let mut body = report.to_json(req.dfg.name(), &req.arch_display);
            body.push('\n');
            // Fold this job's top-level phase durations into the latency
            // histograms, plus the end-to-end compile span.
            let events = sink.take();
            let totals = phase_totals(&events);
            let mut folded: Vec<(&str, u64)> = totals
                .iter()
                .filter(|(phase, _, _)| !phase.contains('.'))
                .map(|&(phase, _, ns)| (phase, ns))
                .collect();
            let request_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            folded.push(("request", request_ns));
            state.metrics.job_completed(&folded);
            state.store_response(key, &body);
            JobOutcome { status: 200, body }
        }
        Err(PanoramaError::Cancelled) => {
            state.metrics.job_cancelled();
            error_outcome(
                504,
                "cancelled",
                "deadline exceeded; the pipeline stopped cooperatively",
            )
        }
        Err(e) => {
            state.metrics.job_failed();
            error_outcome(422, "compile_failed", &e.to_string())
        }
    }
}

fn error_outcome(status: u16, error: &str, detail: &str) -> JobOutcome {
    JobOutcome {
        status,
        body: format!(
            "{{\"schema\":\"{ERROR_SCHEMA}\",\"error\":\"{}\",\"detail\":\"{}\"}}\n",
            escape(error),
            escape(detail)
        ),
    }
}

fn handle_connection(state: &Arc<State>, stream: TcpStream) {
    let peer_loopback = stream.peer_addr().is_ok_and(|a| a.ip().is_loopback());
    let request = match read_request(&stream) {
        Ok(request) => request,
        Err(e) => {
            let JobOutcome { status, body } = error_outcome(400, "bad_request", &e);
            let _ = write_response(&stream, status, &[], &body);
            return;
        }
    };
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let _ = write_response(&stream, 200, &[], "{\"status\":\"ok\"}\n");
        }
        ("GET", "/metrics") => {
            let body = format!(
                "{}\n",
                state.metrics.to_json(
                    state.queue.capacity(),
                    state.result_stats(),
                    state.mrrg_stats(),
                    state.warm_stats(),
                    state.disk_stats(),
                    &state.quota.stats(),
                )
            );
            let _ = write_response(&stream, 200, &[], &body);
        }
        ("POST", "/admin/shutdown") => {
            if peer_loopback {
                initiate_drain(state);
                let _ = write_response(&stream, 200, &[], "{\"status\":\"draining\"}\n");
            } else {
                let JobOutcome { status, body } =
                    error_outcome(403, "forbidden", "shutdown is loopback-only");
                let _ = write_response(&stream, status, &[], &body);
            }
        }
        ("POST", "/compile") => handle_compile(state, &stream, &request),
        ("POST", "/compile-batch") => handle_compile_batch(state, &stream, &request),
        ("POST", "/lint") => handle_lint(&stream, &request),
        (
            _,
            "/healthz" | "/metrics" | "/admin/shutdown" | "/compile" | "/compile-batch" | "/lint",
        ) => {
            let JobOutcome { status, body } =
                error_outcome(405, "method_not_allowed", "wrong method for this path");
            let _ = write_response(&stream, status, &[], &body);
        }
        _ => {
            let JobOutcome { status, body } = error_outcome(404, "not_found", "unknown path");
            let _ = write_response(&stream, status, &[], &body);
        }
    }
}

/// The content key of a parsed request: everything that determines the
/// response bytes, nothing incidental (see [`crate::cache`]).
fn compile_key(parsed: &CompileRequest) -> u64 {
    ContentHash::new()
        .chunk(&parsed.dfg.to_text())
        .chunk(&parsed.arch_display)
        .chunk(&parsed.arch_config.to_text())
        .chunk(&parsed.mapper)
        .chunk(if parsed.baseline {
            "baseline"
        } else {
            "guided"
        })
        .chunk(&parsed.max_ii.map(|n| n.to_string()).unwrap_or_default())
        .chunk(if parsed.analyze { "analyze" } else { "plain" })
        .finish()
}

/// Writes the 429 for a quota-rejected request (`n` compile units).
fn reject_quota(state: &Arc<State>, stream: &TcpStream, n: u64) {
    state.metrics.request_quota_rejected(n);
    let JobOutcome { status, body } = error_outcome(
        429,
        "quota_exceeded",
        "tenant quota exhausted; retry after the indicated delay",
    );
    let retry = format!("Retry-After: {}", state.quota.retry_after_secs());
    let _ = write_response(stream, status, &[retry.as_str()], &body);
}

fn handle_compile(state: &Arc<State>, stream: &TcpStream, request: &Request) {
    if !state.quota.admit(request.header(TENANT_HEADER)) {
        reject_quota(state, stream, 1);
        return;
    }
    let parsed =
        match parse_compile_request(&request.body, state.config.deadline, state.config.analyze) {
            Ok(parsed) => parsed,
            Err(e) => {
                let JobOutcome { status, body } = error_outcome(400, "bad_request", &e);
                let _ = write_response(stream, status, &[], &body);
                return;
            }
        };
    let key = compile_key(&parsed);
    if let Some(body) = state.cached_response(key) {
        state.metrics.request_cache_hit();
        let _ = write_response(stream, 200, &[], &body);
        return;
    }
    let deadline = parsed.deadline;
    let cancel = CancelToken::new();
    let done = Arc::new(AtomicBool::new(false));
    if let Some(d) = deadline {
        // Register before the push so the clock includes queue wait.
        state
            .watch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(WatchEntry {
                deadline: Instant::now() + d,
                cancel: cancel.clone(),
                done: Arc::clone(&done),
            });
    }
    let (tx, rx) = mpsc::channel();
    let job = Job::Single(Box::new(SingleJob {
        request: parsed,
        key,
        cancel,
        done: Arc::clone(&done),
        respond: tx,
    }));
    // Account the enqueue *before* pushing: once the job is in the queue a
    // worker may pop it at any moment, and `job_started` must never see
    // `queued == 0` (debug builds panic on the underflow).
    state.metrics.request_enqueued();
    if let Err((_job, _reason)) = state.queue.try_push(job) {
        // Full and draining shed identically: try again later.
        done.store(true, Ordering::Release);
        state.metrics.request_shed_after_enqueue();
        let JobOutcome { status, body } = error_outcome(
            503,
            "overloaded",
            "compile queue is full; retry after the indicated delay",
        );
        let _ = write_response(stream, status, &["Retry-After: 1"], &body);
        return;
    }
    match rx.recv() {
        Ok(outcome) => {
            let _ = write_response(stream, outcome.status, &[], &outcome.body);
        }
        Err(_) => {
            // Worker pool died before responding — only possible during a
            // hard teardown; treat like shedding so the client retries.
            let JobOutcome { status, body } =
                error_outcome(503, "shutting_down", "server is draining");
            let _ = write_response(stream, status, &["Retry-After: 1"], &body);
        }
    }
}

/// `POST /compile-batch`: N compile entries in one request, sharing the
/// daemon's `Cgra`/MRRG setup and fanning out on the batch executor.
///
/// Failure is *per entry*: a malformed entry yields a 400-shaped element,
/// a shed entry a 503-shaped one, while the rest of the batch proceeds —
/// the envelope itself is `200` whenever the request frame parses. Every
/// entry's `response` is byte-identical to what `/compile` would have
/// returned for the same body (cache tiers included), so batching is a
/// transport optimization, never a semantic fork.
fn handle_compile_batch(state: &Arc<State>, stream: &TcpStream, request: &Request) {
    let bad_request = |reason: &str| {
        let JobOutcome { status, body } = error_outcome(400, "bad_request", reason);
        let _ = write_response(stream, status, &[], &body);
    };
    let doc = match parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => return bad_request(&e),
    };
    let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
        return bad_request("missing `entries` array");
    };
    if entries.is_empty() {
        return bad_request("`entries` must not be empty");
    }
    if entries.len() > MAX_BATCH_ENTRIES {
        return bad_request(&format!(
            "too many entries ({} > {MAX_BATCH_ENTRIES})",
            entries.len()
        ));
    }
    let batch_deadline = match opt_usize(&doc, "deadline_ms") {
        Ok(Some(ms)) => Some(Duration::from_millis(ms as u64)),
        Ok(None) => state.config.deadline,
        Err(e) => return bad_request(&e),
    };
    // Quota charges one token per entry, all-or-nothing — batching must
    // not be a way around admission control.
    if !state
        .quota
        .admit_n(request.header(TENANT_HEADER), entries.len() as u64)
    {
        reject_quota(state, stream, entries.len() as u64);
        return;
    }
    // Parse every entry and probe the cache tiers; only misses queue.
    let mut results: Vec<Option<JobOutcome>> = Vec::with_capacity(entries.len());
    let mut misses: Vec<BatchEntry> = Vec::new();
    let mut hits = 0u64;
    for (index, entry) in entries.iter().enumerate() {
        match parse_compile_doc(entry, batch_deadline, state.config.analyze) {
            Err(e) => results.push(Some(error_outcome(400, "bad_request", &e))),
            Ok(parsed) => {
                let key = compile_key(&parsed);
                if let Some(body) = state.cached_response(key) {
                    hits += 1;
                    results.push(Some(JobOutcome { status: 200, body }));
                } else {
                    results.push(None);
                    misses.push(BatchEntry {
                        index,
                        request: parsed,
                        key,
                    });
                }
            }
        }
    }
    if hits > 0 {
        state.metrics.request_cache_hits(hits);
    }
    if !misses.is_empty() {
        let count = misses.len() as u64;
        let cancel = CancelToken::new();
        let done = Arc::new(AtomicBool::new(false));
        if let Some(d) = batch_deadline {
            // One deadline governs the whole batch (queue wait included);
            // entry-level `deadline_ms` fields do not re-arm the watchdog.
            state
                .watch
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(WatchEntry {
                    deadline: Instant::now() + d,
                    cancel: cancel.clone(),
                    done: Arc::clone(&done),
                });
        }
        let (tx, rx) = mpsc::channel();
        let job = Job::Batch(BatchJob {
            entries: misses,
            cancel,
            done: Arc::clone(&done),
            respond: tx,
        });
        state.metrics.request_enqueued_n(count);
        if state.queue.try_push(job).is_err() {
            // Shed the miss entries; cache hits in this same batch still
            // return their bodies (failure is per entry).
            done.store(true, Ordering::Release);
            state.metrics.request_shed_after_enqueue_n(count);
            for slot in results.iter_mut().filter(|s| s.is_none()) {
                *slot = Some(error_outcome(
                    503,
                    "overloaded",
                    "compile queue is full; retry after the indicated delay",
                ));
            }
        } else {
            match rx.recv() {
                Ok(outcomes) => {
                    for (index, outcome) in outcomes {
                        results[index] = Some(outcome);
                    }
                }
                Err(_) => {
                    for slot in results.iter_mut().filter(|s| s.is_none()) {
                        *slot = Some(error_outcome(503, "shutting_down", "server is draining"));
                    }
                }
            }
        }
    }
    let mut body = format!(
        "{{\"schema\":\"{BATCH_SCHEMA}\",\"count\":{},\"results\":[",
        results.len()
    );
    for (index, outcome) in results.iter().enumerate() {
        let outcome = outcome.as_ref().expect("every entry settled");
        if index > 0 {
            body.push(',');
        }
        // The per-entry body is a complete JSON document; embed it
        // verbatim (minus its trailing newline) so batch responses carry
        // the exact bytes `/compile` would have produced.
        use std::fmt::Write as _;
        let _ = write!(
            body,
            "{{\"index\":{index},\"status\":{},\"response\":{}}}",
            outcome.status,
            outcome.body.trim_end(),
        );
    }
    body.push_str("]}\n");
    let _ = write_response(stream, 200, &[], &body);
}

fn handle_lint(stream: &TcpStream, request: &Request) {
    let body = match lint_body(&request.body) {
        Ok(body) => body,
        Err(e) => {
            let JobOutcome { status, body } = error_outcome(400, "bad_request", &e);
            let _ = write_response(stream, status, &[], &body);
            return;
        }
    };
    let _ = write_response(stream, 200, &[], &body);
}

fn lint_body(raw: &str) -> Result<String, String> {
    let doc = parse(raw)?;
    let dfg = parse_dfg_field(&doc)?;
    let cgra = match parse_arch_field(&doc)? {
        Some((_display, config)) => Some(Cgra::new(config).map_err(|e| e.to_string())?),
        None => None,
    };
    let max_ii = opt_usize(&doc, "max_ii")?;
    let ctx = LintContext {
        dfg: Some(&dfg),
        cgra: cgra.as_ref(),
        max_ii,
        ..LintContext::default()
    };
    let mut diags = Diagnostics::new();
    diags.extend(Registry::with_default_passes().run(&ctx));
    Ok(format!("{}\n", diags.render_json()))
}

fn opt_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(Json::as_str)
}

fn opt_usize(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
            Ok(Some(n as usize))
        }
    }
}

fn parse_dfg_field(doc: &Json) -> Result<Dfg, String> {
    let scale = match opt_str(doc, "scale") {
        None | Some("scaled") => KernelScale::Scaled,
        Some("tiny") => KernelScale::Tiny,
        Some("paper") => KernelScale::Paper,
        Some(other) => return Err(format!("unknown scale `{other}`")),
    };
    match (opt_str(doc, "kernel"), opt_str(doc, "dfg")) {
        (Some(name), None) => {
            let id = KernelId::ALL
                .iter()
                .find(|id| {
                    id.name().eq_ignore_ascii_case(name)
                        || format!("{id:?}").eq_ignore_ascii_case(name)
                })
                .ok_or_else(|| format!("unknown kernel `{name}`"))?;
            Ok(kernels::generate(*id, scale))
        }
        (None, Some(text)) => Dfg::from_text(text).map_err(|e| e.to_string()),
        (Some(_), Some(_)) => Err("give either `kernel` or `dfg`, not both".to_string()),
        (None, None) => Err("missing `kernel` (builtin name) or `dfg` (inline text)".to_string()),
    }
}

/// `(display name, config)` from `arch` (preset) / `arch_text` (inline
/// ADL); `None` when the request names no architecture (lint only).
fn parse_arch_field(doc: &Json) -> Result<Option<(String, CgraConfig)>, String> {
    if let Some(text) = opt_str(doc, "arch_text") {
        let config = CgraConfig::from_text(text).map_err(|e| e.to_string())?;
        let display = opt_str(doc, "arch").unwrap_or("custom").to_string();
        return Ok(Some((display, config)));
    }
    let Some(preset) = opt_str(doc, "arch") else {
        return Ok(None);
    };
    let config = match preset {
        "8x8" => CgraConfig::scaled_8x8(),
        "4x4" => CgraConfig::small_4x4(),
        "9x9" => CgraConfig::paper_9x9(),
        "16x16" => CgraConfig::paper_16x16(),
        "6x1" => CgraConfig::linear_6x1(),
        other => {
            return Err(format!(
                "unknown arch preset `{other}` (use arch_text for ADL)"
            ))
        }
    };
    Ok(Some((preset.to_string(), config)))
}

fn parse_compile_request(
    raw: &str,
    default_deadline: Option<Duration>,
    default_analyze: bool,
) -> Result<CompileRequest, String> {
    let doc = parse(raw)?;
    parse_compile_doc(&doc, default_deadline, default_analyze)
}

/// [`parse_compile_request`] over an already-parsed JSON value — the
/// shape `/compile-batch` entries arrive in.
fn parse_compile_doc(
    doc: &Json,
    default_deadline: Option<Duration>,
    default_analyze: bool,
) -> Result<CompileRequest, String> {
    let dfg = parse_dfg_field(doc)?;
    let (arch_display, arch_config) =
        parse_arch_field(doc)?.unwrap_or_else(|| ("8x8".to_string(), CgraConfig::scaled_8x8()));
    let mapper = opt_str(doc, "mapper").unwrap_or("spr").to_string();
    if !matches!(mapper.as_str(), "spr" | "ultrafast" | "exhaustive" | "sat") {
        return Err(format!("unknown mapper `{mapper}`"));
    }
    let baseline = doc.get("baseline").and_then(Json::as_bool).unwrap_or(false);
    let max_ii = opt_usize(doc, "max_ii")?;
    let threads = opt_usize(doc, "threads")?;
    let deadline = match opt_usize(doc, "deadline_ms")? {
        Some(ms) => Some(Duration::from_millis(ms as u64)),
        None => default_deadline,
    };
    let analyze = doc
        .get("analyze")
        .and_then(Json::as_bool)
        .unwrap_or(default_analyze);
    Ok(CompileRequest {
        dfg,
        arch_display,
        arch_config,
        mapper,
        baseline,
        max_ii,
        threads,
        deadline,
        analyze,
    })
}

/// Object-safe shim so one closure drives any mapper (mirrors the CLI).
struct DynMapper<'a>(&'a dyn LowerLevelMapper);

impl LowerLevelMapper for DynMapper<'_> {
    fn map(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&panorama_mapper::Restriction>,
    ) -> Result<panorama_mapper::Mapping, panorama_mapper::MapError> {
        self.0.map(dfg, cgra, restriction)
    }

    fn map_with_control(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&panorama_mapper::Restriction>,
        control: Option<&panorama_mapper::SearchControl>,
    ) -> Result<panorama_mapper::Mapping, panorama_mapper::MapError> {
        self.0.map_with_control(dfg, cgra, restriction, control)
    }

    fn map_traced(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&panorama_mapper::Restriction>,
        control: Option<&panorama_mapper::SearchControl>,
        trace: &mut panorama_trace::SpanCollector,
    ) -> Result<panorama_mapper::Mapping, panorama_mapper::MapError> {
        self.0.map_traced(dfg, cgra, restriction, control, trace)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_request_parses_defaults() {
        let req = parse_compile_request("{\"kernel\":\"fir\"}", None, false).unwrap();
        assert_eq!(req.dfg.name(), "fir");
        assert_eq!(req.arch_display, "8x8");
        assert_eq!(req.mapper, "spr");
        assert!(!req.baseline);
        assert_eq!(req.threads, None);
        assert!(req.deadline.is_none());
        assert!(!req.analyze);
    }

    #[test]
    fn compile_request_rejects_unknowns() {
        assert!(parse_compile_request("{\"kernel\":\"nope\"}", None, false).is_err());
        assert!(
            parse_compile_request("{\"kernel\":\"fir\",\"mapper\":\"magic\"}", None, false)
                .is_err()
        );
        assert!(
            parse_compile_request("{\"kernel\":\"fir\",\"arch\":\"3x3\"}", None, false).is_err()
        );
        assert!(parse_compile_request("{}", None, false).is_err());
        assert!(parse_compile_request("not json", None, false).is_err());
    }

    #[test]
    fn per_request_deadline_overrides_the_default() {
        let default = Some(Duration::from_secs(60));
        let req = parse_compile_request("{\"kernel\":\"fir\",\"deadline_ms\":25}", default, false)
            .unwrap();
        assert_eq!(req.deadline, Some(Duration::from_millis(25)));
        let req = parse_compile_request("{\"kernel\":\"fir\"}", default, false).unwrap();
        assert_eq!(req.deadline, default);
    }

    #[test]
    fn per_request_analyze_overrides_the_daemon_default() {
        let req = parse_compile_request("{\"kernel\":\"fir\"}", None, true).unwrap();
        assert!(
            req.analyze,
            "daemon default applies when the field is absent"
        );
        let req =
            parse_compile_request("{\"kernel\":\"fir\",\"analyze\":false}", None, true).unwrap();
        assert!(!req.analyze);
        let req =
            parse_compile_request("{\"kernel\":\"fir\",\"analyze\":true}", None, false).unwrap();
        assert!(req.analyze);
    }

    #[test]
    fn inline_dfg_text_round_trips() {
        let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
        let body = format!(
            "{{\"dfg\":\"{}\",\"arch\":\"4x4\"}}",
            escape(&dfg.to_text())
        );
        let req = parse_compile_request(&body, None, false).unwrap();
        assert_eq!(req.dfg.name(), dfg.name());
        assert_eq!(req.arch_display, "4x4");
    }
}
