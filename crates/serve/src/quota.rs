//! Per-tenant admission control: token buckets over the shed path.
//!
//! The queue-full 503 shed protects the *server*; it does nothing to stop
//! one greedy client from starving everyone else before the queue is even
//! full. This module adds the per-client layer: each tenant (the
//! `X-Panorama-Tenant` header, `"anonymous"` when absent) owns a token
//! bucket of capacity `burst` refilled at `rps` tokens per second, and a
//! request that finds the bucket empty is rejected with `429` *before* it
//! touches the cache or the queue.
//!
//! Determinism note: with `rps = 0` the bucket never refills, so a tenant
//! gets exactly `burst` admissions ever — which is what the e2e tests use
//! to assert exact admit/reject counts without racing a clock.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Hard cap on distinct tenant buckets; past it, unseen tenants share one
/// overflow bucket so a hostile client cannot balloon memory by rotating
/// tenant names.
const MAX_TENANTS: usize = 1024;

/// Tenant names longer than this are truncated (they key a map and appear
/// in `/metrics`; nothing legitimate needs more).
const MAX_TENANT_LEN: usize = 64;

/// The shared bucket for tenants arriving after [`MAX_TENANTS`] distinct
/// names have been seen.
pub const OVERFLOW_TENANT: &str = "(overflow)";

/// The tenant name used when no `X-Panorama-Tenant` header is present.
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// The HTTP header carrying the tenant name.
pub const TENANT_HEADER: &str = "X-Panorama-Tenant";

#[derive(Debug, Clone)]
struct Bucket {
    /// Fractional tokens currently available, `<= burst`.
    tokens: f64,
    last_refill: Instant,
    admitted: u64,
    rejected: u64,
}

/// One tenant's counters, snapshotted for `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant name (sanitized).
    pub tenant: String,
    /// Requests admitted past the quota gate.
    pub admitted: u64,
    /// Requests rejected with 429.
    pub rejected: u64,
    /// Whole tokens currently available (floor of the fractional bucket).
    pub tokens: u64,
}

/// Snapshot of the quota gate for `/metrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuotaStats {
    /// Whether the gate is enforcing (a disabled gate admits everything).
    pub enabled: bool,
    /// Refill rate, tokens per second.
    pub rps: u64,
    /// Bucket capacity.
    pub burst: u64,
    /// Per-tenant counters, sorted by tenant name (unique).
    pub tenants: Vec<TenantStats>,
}

/// Token-bucket admission control keyed by tenant name.
#[derive(Debug)]
pub struct Quota {
    rps: u64,
    burst: u64,
    buckets: Mutex<BTreeMap<String, Bucket>>,
}

impl Quota {
    /// A gate refilling `rps` tokens per second into buckets of capacity
    /// `burst`. `burst = 0` disables enforcement entirely (every request
    /// admitted, no state kept).
    pub fn new(rps: u64, burst: u64) -> Quota {
        Quota {
            rps,
            burst,
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether the gate is enforcing.
    pub fn enabled(&self) -> bool {
        self.burst > 0
    }

    /// Poison recovery: bucket updates are whole under the lock.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Bucket>> {
        self.buckets.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Normalizes a tenant header value into a bucket key.
    fn key(&self, tenant: Option<&str>, buckets: &BTreeMap<String, Bucket>) -> String {
        let name = tenant
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .unwrap_or(ANONYMOUS_TENANT);
        let name: String = name.chars().take(MAX_TENANT_LEN).collect();
        if !buckets.contains_key(&name) && buckets.len() >= MAX_TENANTS {
            return OVERFLOW_TENANT.to_string();
        }
        name
    }

    /// Admits or rejects `n` compile units for `tenant` at time `now`,
    /// all-or-nothing (a `/compile-batch` of `n` entries charges `n`
    /// tokens — batching is not a quota bypass, and a batch larger than
    /// `burst` can never be admitted while the gate is on). A disabled
    /// gate admits unconditionally without recording the tenant.
    pub fn admit_n_at(&self, tenant: Option<&str>, n: u64, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut buckets = self.lock();
        let key = self.key(tenant, &buckets);
        let bucket = buckets.entry(key).or_insert_with(|| Bucket {
            tokens: self.burst as f64,
            last_refill: now,
            admitted: 0,
            rejected: 0,
        });
        let elapsed = now.saturating_duration_since(bucket.last_refill);
        bucket.last_refill = now;
        bucket.tokens =
            (bucket.tokens + elapsed.as_secs_f64() * self.rps as f64).min(self.burst as f64);
        if bucket.tokens >= n as f64 {
            bucket.tokens -= n as f64;
            bucket.admitted += n;
            true
        } else {
            bucket.rejected += n;
            false
        }
    }

    /// Single-unit [`Quota::admit_n_at`] at time `now`.
    pub fn admit_at(&self, tenant: Option<&str>, now: Instant) -> bool {
        self.admit_n_at(tenant, 1, now)
    }

    /// [`Quota::admit_at`] with the current time.
    pub fn admit(&self, tenant: Option<&str>) -> bool {
        self.admit_at(tenant, Instant::now())
    }

    /// [`Quota::admit_n_at`] with the current time.
    pub fn admit_n(&self, tenant: Option<&str>, n: u64) -> bool {
        self.admit_n_at(tenant, n, Instant::now())
    }

    /// Seconds until `tenant` plausibly has a token again — the
    /// `Retry-After` hint on a 429 (at least 1; `rps = 0` never refills,
    /// so the hint caps at 60).
    pub fn retry_after_secs(&self) -> u64 {
        if self.rps == 0 {
            60
        } else {
            1
        }
    }

    /// Snapshot for `/metrics`: tenants sorted (BTreeMap order), counters
    /// exact under the lock.
    pub fn stats(&self) -> QuotaStats {
        let buckets = self.lock();
        QuotaStats {
            enabled: self.enabled(),
            rps: self.rps,
            burst: self.burst,
            tenants: buckets
                .iter()
                .map(|(tenant, b)| TenantStats {
                    tenant: tenant.clone(),
                    admitted: b.admitted,
                    rejected: b.rejected,
                    tokens: b.tokens.max(0.0) as u64,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_gate_admits_everything_statelessly() {
        let q = Quota::new(0, 0);
        assert!(!q.enabled());
        for _ in 0..100 {
            assert!(q.admit(Some("anyone")));
        }
        assert!(q.stats().tenants.is_empty());
    }

    #[test]
    fn zero_rps_burst_k_admits_exactly_k() {
        let q = Quota::new(0, 3);
        let now = Instant::now();
        for i in 0..3 {
            assert!(q.admit_at(Some("alice"), now), "admission {i}");
        }
        assert!(!q.admit_at(Some("alice"), now));
        assert!(!q.admit_at(Some("alice"), now));
        // An unrelated tenant has a full bucket of its own.
        assert!(q.admit_at(Some("bob"), now));
        let stats = q.stats();
        let names: Vec<&str> = stats.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["alice", "bob"], "sorted, unique");
        assert_eq!(stats.tenants[0].admitted, 3);
        assert_eq!(stats.tenants[0].rejected, 2);
        assert_eq!(stats.tenants[1].admitted, 1);
    }

    #[test]
    fn refill_restores_tokens_at_rps() {
        let q = Quota::new(10, 2);
        let t0 = Instant::now();
        assert!(q.admit_at(Some("t"), t0));
        assert!(q.admit_at(Some("t"), t0));
        assert!(!q.admit_at(Some("t"), t0), "bucket drained");
        // 100 ms at 10 rps refills one token; capacity caps at burst.
        let t1 = t0 + Duration::from_millis(100);
        assert!(q.admit_at(Some("t"), t1));
        assert!(!q.admit_at(Some("t"), t1));
        let t2 = t1 + Duration::from_secs(10);
        assert!(q.admit_at(Some("t"), t2));
        assert!(q.admit_at(Some("t"), t2));
        assert!(!q.admit_at(Some("t"), t2), "refill caps at burst");
    }

    #[test]
    fn batches_charge_per_entry_all_or_nothing() {
        let q = Quota::new(0, 5);
        let now = Instant::now();
        assert!(!q.admit_n_at(Some("t"), 6, now), "batch larger than burst");
        assert!(q.admit_n_at(Some("t"), 4, now));
        assert!(!q.admit_n_at(Some("t"), 2, now), "only 1 token left");
        assert!(q.admit_n_at(Some("t"), 1, now));
        let stats = q.stats();
        assert_eq!(stats.tenants[0].admitted, 5);
        assert_eq!(stats.tenants[0].rejected, 8);
    }

    #[test]
    fn missing_or_blank_tenant_maps_to_anonymous() {
        let q = Quota::new(0, 1);
        let now = Instant::now();
        assert!(q.admit_at(None, now));
        assert!(
            !q.admit_at(Some("  "), now),
            "blank shares anonymous bucket"
        );
        let stats = q.stats();
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.tenants[0].tenant, ANONYMOUS_TENANT);
    }

    #[test]
    fn tenant_rotation_cannot_balloon_memory() {
        let q = Quota::new(0, 1);
        let now = Instant::now();
        for i in 0..(MAX_TENANTS + 50) {
            q.admit_at(Some(&format!("tenant-{i}")), now);
        }
        let stats = q.stats();
        assert!(stats.tenants.len() <= MAX_TENANTS + 1);
        assert!(stats.tenants.iter().any(|t| t.tenant == OVERFLOW_TENANT));
    }

    #[test]
    fn long_tenant_names_are_truncated() {
        let q = Quota::new(0, 5);
        let now = Instant::now();
        let long = "x".repeat(500);
        assert!(q.admit_at(Some(&long), now));
        let stats = q.stats();
        assert_eq!(stats.tenants[0].tenant.len(), MAX_TENANT_LEN);
    }
}
