//! Minimal HTTP/1.1 framing over blocking sockets.
//!
//! The daemon's surface is four endpoints exchanging small JSON bodies, so
//! a full HTTP stack would be all liability: this module implements exactly
//! the subset the server speaks — request line, headers, `Content-Length`
//! bodies, and `Connection: close` responses — on `std::io` streams, with
//! hard caps on header and body sizes so a hostile peer cannot balloon
//! memory.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request line plus all headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (generous for inline DFG/ADL text).
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request: method, path, headers, and body.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`).
    pub method: String,
    /// Request target path, query string included verbatim.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Decoded request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Parses one `Content-Length` value with request-smuggling hardening:
/// the value must be pure ASCII digits after trimming optional whitespace
/// — a sign, an empty/whitespace-only value, or any other decoration is
/// rejected rather than leniently accepted by `parse`.
fn parse_content_length(value: &str) -> Result<usize, String> {
    let digits = value.trim();
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad Content-Length `{}`", value.trim()));
    }
    digits
        .parse::<usize>()
        .map_err(|_| format!("bad Content-Length `{digits}`"))
}

/// Reads one HTTP/1.1 request from `stream`. Returns `Err` with a
/// human-readable reason on malformed input or when a size cap trips.
pub fn read_request<S: Read>(stream: S) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            return Err("request head exceeds 16 KiB".to_string());
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version `{version}`"));
    }
    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            let parsed = parse_content_length(value)?;
            // Duplicate Content-Length headers that agree are tolerated
            // (some proxies emit them); conflicting duplicates are the
            // classic request-smuggling vector and are rejected outright
            // rather than resolved last-one-wins.
            if let Some(prev) = content_length {
                if prev != parsed {
                    return Err(format!(
                        "conflicting Content-Length headers ({prev} vs {parsed})"
                    ));
                }
            }
            content_length = Some(parsed);
        }
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err("request body exceeds 4 MiB".to_string());
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes one `Connection: close` response with a JSON body.
/// `extra_headers` lines must be complete (`"Retry-After: 1"`), without
/// trailing CRLF.
pub fn write_response<S: Write>(
    mut stream: S,
    status: u16,
    extra_headers: &[&str],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for header in extra_headers {
        head.push_str(header);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compile");
        assert_eq!(req.body, "hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_without_allocating_them() {
        let raw = "POST /compile HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let err = read_request(raw.as_bytes()).unwrap_err();
        assert!(err.contains("4 MiB"), "{err}");
    }

    #[test]
    fn rejects_short_bodies() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(raw.as_bytes()).is_err());
    }

    #[test]
    fn rejects_conflicting_duplicate_content_lengths() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\nhello";
        let err = read_request(raw.as_bytes()).unwrap_err();
        assert!(err.contains("conflicting Content-Length"), "{err}");
    }

    #[test]
    fn tolerates_agreeing_duplicate_content_lengths() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.body, "hello");
    }

    #[test]
    fn rejects_signed_or_decorated_content_lengths() {
        for bad in ["+5", "-1", " ", "", "0x10", "5 5", "5,5"] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello");
            let err = read_request(raw.as_bytes()).unwrap_err();
            assert!(err.contains("Content-Length"), "`{bad}`: {err}");
        }
    }

    #[test]
    fn headers_are_captured_case_insensitively() {
        let raw = "POST /x HTTP/1.1\r\nX-Panorama-Tenant: alice\r\nContent-Length: 2\r\n\r\nhi";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.header("x-panorama-tenant"), Some("alice"));
        assert_eq!(req.header("X-PANORAMA-TENANT"), Some("alice"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn response_has_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 503, &["Retry-After: 1"], "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
