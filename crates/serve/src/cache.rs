//! Content-addressed LRU cache of completed compile responses.
//!
//! Iterative DSE loops re-query the same (kernel, architecture, options)
//! point many times; the compile pipeline is deterministic, so the
//! canonical response document can be replayed byte-for-byte. The key is
//! an FNV-1a hash over the *content* that determines the response — the
//! DFG text, the architecture text, and the mapping options — never over
//! anything incidental like the client, the worker count, or arrival time.
//! (The portfolio's result is bit-identical at any thread count, which is
//! what makes excluding `threads` from the key sound.)

use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Accumulating FNV-1a hasher over byte chunks, with length framing so
/// `("ab", "c")` and `("a", "bc")` key differently.
#[derive(Debug, Clone, Copy)]
pub struct ContentHash(u64);

impl Default for ContentHash {
    fn default() -> Self {
        ContentHash(0xcbf2_9ce4_8422_2325) // FNV offset basis
    }
}

impl ContentHash {
    /// A fresh hasher.
    pub fn new() -> Self {
        ContentHash::default()
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
        }
    }

    /// Mixes one framed chunk into the hash.
    #[must_use]
    pub fn chunk(mut self, bytes: &str) -> Self {
        self.push_bytes(&(bytes.len() as u64).to_le_bytes());
        self.push_bytes(bytes.as_bytes());
        self
    }

    /// The final 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

struct Slot {
    response: String,
    last_used: u64,
}

/// Slots plus a tick-ordered recency index. Ticks are unique (one global
/// counter incremented under the lock), so `order` is a total order over
/// resident keys: the least recently used entry is always `order`'s first
/// element, making eviction `O(log n)` instead of a full scan.
struct Inner {
    slots: HashMap<u64, Slot>,
    /// `last_used tick -> key`; every resident key appears exactly once.
    order: BTreeMap<u64, u64>,
    tick: u64,
}

impl Inner {
    /// Moves `key` (already in `slots`) to most-recently-used.
    fn touch(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.slots.get_mut(&key).expect("touched key is resident");
        self.order.remove(&slot.last_used);
        slot.last_used = tick;
        self.order.insert(tick, key);
    }
}

/// A bounded key → response-document cache with LRU eviction.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache retaining at most `capacity` responses (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Poison recovery, same reasoning as the job queue: values are whole
    /// inserted strings, never partially built under the lock.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cached response for `key`, refreshing its recency.
    pub fn get(&self, key: u64) -> Option<String> {
        let mut inner = self.lock();
        if !inner.slots.contains_key(&key) {
            return None;
        }
        inner.touch(key);
        Some(inner.slots[&key].response.clone())
    }

    /// Stores a response, evicting the least recently used entry past
    /// capacity. Insert is `O(log n)`: recency is tracked in a tick-ordered
    /// index, so eviction pops the index head instead of scanning every
    /// slot.
    pub fn insert(&self, key: u64, response: String) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.slots.insert(
            key,
            Slot {
                response,
                last_used: tick,
            },
        ) {
            inner.order.remove(&old.last_used);
        }
        inner.order.insert(tick, key);
        while inner.slots.len() > self.capacity {
            let Some((_, victim)) = inner.order.pop_first() else {
                break;
            };
            inner.slots.remove(&victim);
        }
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of retained responses.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_frames_chunks() {
        let a = ContentHash::new().chunk("ab").chunk("c").finish();
        let b = ContentHash::new().chunk("a").chunk("bc").finish();
        assert_ne!(a, b);
        let c = ContentHash::new().chunk("ab").chunk("c").finish();
        assert_eq!(a, c);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = ResultCache::new(2);
        cache.insert(1, "one".to_string());
        cache.insert(2, "two".to_string());
        assert_eq!(cache.get(1).as_deref(), Some("one")); // 2 is now LRU
        cache.insert(3, "three".to_string());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1).as_deref(), Some("one"));
        assert_eq!(cache.get(3).as_deref(), Some("three"));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = ResultCache::new(2);
        cache.insert(1, "old".to_string());
        cache.insert(1, "new".to_string());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1).as_deref(), Some("new"));
    }

    /// Regression test for the `O(capacity)` eviction scan: at capacity
    /// 10k, inserting 2×capacity entries must stay fast (the old
    /// `min_by_key` scan made this quadratic) and evict in exact LRU
    /// order — the surviving keys are precisely the newest `capacity`.
    #[test]
    fn insert_at_capacity_10k_is_logarithmic_and_exact_lru() {
        const CAP: u64 = 10_000;
        let cache = ResultCache::new(CAP as usize);
        for key in 0..2 * CAP {
            cache.insert(key, String::new());
        }
        assert_eq!(cache.len(), CAP as usize);
        assert!(cache.get(CAP - 1).is_none(), "oldest half evicted");
        assert!(cache.get(CAP).is_some(), "newest half resident");
        // Refresh an old-but-resident key, then push one past capacity:
        // the refreshed key survives, the now-coldest one does not.
        assert!(cache.get(CAP + 1).is_some());
        cache.insert(2 * CAP, String::new());
        assert!(cache.get(CAP + 1).is_some(), "refreshed key survives");
        assert!(cache.get(CAP + 2).is_none(), "coldest key evicted");
    }

    /// Concurrent get/insert stress: 8 threads hammering a small cache
    /// must never lose an update mid-flight (every get returns the exact
    /// string inserted for that key) and `len <= capacity` must hold at
    /// every observation point.
    #[test]
    fn concurrent_stress_preserves_values_and_capacity() {
        use std::sync::Arc;
        const CAP: usize = 64;
        let cache = Arc::new(ResultCache::new(CAP));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = (t * 131 + i) % 256;
                        cache.insert(key, format!("value-{key}"));
                        let probe = (i * 17 + t) % 256;
                        if let Some(v) = cache.get(probe) {
                            assert_eq!(v, format!("value-{probe}"), "torn value for {probe}");
                        }
                        assert!(cache.len() <= CAP, "len exceeded capacity");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("stress thread");
        }
        assert!(cache.len() <= CAP);
        assert!(!cache.is_empty());
    }
}
