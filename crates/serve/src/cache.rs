//! Content-addressed LRU cache of completed compile responses.
//!
//! Iterative DSE loops re-query the same (kernel, architecture, options)
//! point many times; the compile pipeline is deterministic, so the
//! canonical response document can be replayed byte-for-byte. The key is
//! an FNV-1a hash over the *content* that determines the response — the
//! DFG text, the architecture text, and the mapping options — never over
//! anything incidental like the client, the worker count, or arrival time.
//! (The portfolio's result is bit-identical at any thread count, which is
//! what makes excluding `threads` from the key sound.)

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Accumulating FNV-1a hasher over byte chunks, with length framing so
/// `("ab", "c")` and `("a", "bc")` key differently.
#[derive(Debug, Clone, Copy)]
pub struct ContentHash(u64);

impl Default for ContentHash {
    fn default() -> Self {
        ContentHash(0xcbf2_9ce4_8422_2325) // FNV offset basis
    }
}

impl ContentHash {
    /// A fresh hasher.
    pub fn new() -> Self {
        ContentHash::default()
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
        }
    }

    /// Mixes one framed chunk into the hash.
    #[must_use]
    pub fn chunk(mut self, bytes: &str) -> Self {
        self.push_bytes(&(bytes.len() as u64).to_le_bytes());
        self.push_bytes(bytes.as_bytes());
        self
    }

    /// The final 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

struct Slot {
    response: String,
    last_used: u64,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    tick: u64,
}

/// A bounded key → response-document cache with LRU eviction.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache retaining at most `capacity` responses (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Poison recovery, same reasoning as the job queue: values are whole
    /// inserted strings, never partially built under the lock.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cached response for `key`, refreshing its recency.
    pub fn get(&self, key: u64) -> Option<String> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.slots.get_mut(&key)?;
        slot.last_used = tick;
        Some(slot.response.clone())
    }

    /// Stores a response, evicting the least recently used entry past
    /// capacity.
    pub fn insert(&self, key: u64, response: String) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots.insert(
            key,
            Slot {
                response,
                last_used: tick,
            },
        );
        while inner.slots.len() > self.capacity {
            let Some((&victim, _)) = inner.slots.iter().min_by_key(|(_, s)| s.last_used) else {
                break;
            };
            inner.slots.remove(&victim);
        }
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of retained responses.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_frames_chunks() {
        let a = ContentHash::new().chunk("ab").chunk("c").finish();
        let b = ContentHash::new().chunk("a").chunk("bc").finish();
        assert_ne!(a, b);
        let c = ContentHash::new().chunk("ab").chunk("c").finish();
        assert_eq!(a, c);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = ResultCache::new(2);
        cache.insert(1, "one".to_string());
        cache.insert(2, "two".to_string());
        assert_eq!(cache.get(1).as_deref(), Some("one")); // 2 is now LRU
        cache.insert(3, "three".to_string());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1).as_deref(), Some("one"));
        assert_eq!(cache.get(3).as_deref(), Some("three"));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = ResultCache::new(2);
        cache.insert(1, "old".to_string());
        cache.insert(1, "new".to_string());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1).as_deref(), Some("new"));
    }
}
