//! A line-oriented text format for DFGs — the hand-off point where the
//! original toolchain's LLVM frontend would deliver extracted kernels.
//!
//! ```text
//! dfg fir
//! op 0 ld x0
//! op 1 cst c0
//! op 2 mul m0_0
//! edge 0 2
//! edge 1 2
//! back 2 0 1
//! ```
//!
//! `op <id> <kind> <name> [imm]` declares operation `<id>` (ids must be
//! dense and ascending; the optional trailing integer is an explicit
//! constant immediate), `edge <src> <dst>` an intra-iteration dependency,
//! and `back <src> <dst> <distance>` a loop-carried one. Blank lines and
//! `#` comments are ignored.

use crate::{Dfg, DfgBuilder, OpId, OpKind};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced by [`Dfg::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDfgError {
    /// A line did not match any directive.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown operation mnemonic.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The offending mnemonic.
        kind: String,
    },
    /// Op ids must be declared densely in ascending order.
    NonDenseId {
        /// 1-based line number.
        line: usize,
    },
    /// An edge referenced an undeclared op.
    DanglingId {
        /// 1-based line number.
        line: usize,
    },
    /// The assembled graph failed [`Dfg::validate`].
    Invalid(crate::DfgError),
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDfgError::BadLine { line } => write!(f, "unparseable directive at line {line}"),
            ParseDfgError::UnknownKind { line, kind } => {
                write!(f, "unknown op kind `{kind}` at line {line}")
            }
            ParseDfgError::NonDenseId { line } => {
                write!(f, "op ids must be dense and ascending (line {line})")
            }
            ParseDfgError::DanglingId { line } => {
                write!(f, "edge references an undeclared op at line {line}")
            }
            ParseDfgError::Invalid(e) => write!(f, "parsed DFG is invalid: {e}"),
        }
    }
}

impl Error for ParseDfgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDfgError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

fn kind_from_mnemonic(s: &str) -> Option<OpKind> {
    OpKind::ALL.iter().copied().find(|k| k.mnemonic() == s)
}

impl Dfg {
    /// Serialises the DFG in the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "dfg {}", self.name());
        for v in self.op_ids() {
            let op = self.op(v);
            match op.imm {
                Some(imm) => {
                    let _ = writeln!(
                        out,
                        "op {} {} {} {}",
                        v.index(),
                        op.kind.mnemonic(),
                        op.name,
                        imm
                    );
                }
                None => {
                    let _ = writeln!(out, "op {} {} {}", v.index(), op.kind.mnemonic(), op.name);
                }
            }
        }
        for e in self.deps() {
            match e.weight {
                crate::Dep::Data => {
                    let _ = writeln!(out, "edge {} {}", e.src.index(), e.dst.index());
                }
                crate::Dep::Back { distance } => {
                    let _ = writeln!(out, "back {} {} {}", e.src.index(), e.dst.index(), distance);
                }
            }
        }
        out
    }

    /// Parses the text format back into a DFG.
    ///
    /// # Errors
    ///
    /// See [`ParseDfgError`]; the first offending line is reported.
    pub fn from_text(text: &str) -> Result<Dfg, ParseDfgError> {
        let mut name = String::from("unnamed");
        let mut builder: Option<DfgBuilder> = None;
        let mut declared = 0usize;
        let mut pending_edges: Vec<(usize, usize, usize, u32)> = Vec::new(); // line, src, dst, dist

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("dfg") => {
                    name = parts.next().unwrap_or("unnamed").to_string();
                }
                Some("op") => {
                    let id: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseDfgError::BadLine { line: line_no })?;
                    let kind_str = parts
                        .next()
                        .ok_or(ParseDfgError::BadLine { line: line_no })?;
                    let op_name = parts.next().unwrap_or("_");
                    if id != declared {
                        return Err(ParseDfgError::NonDenseId { line: line_no });
                    }
                    let kind =
                        kind_from_mnemonic(kind_str).ok_or_else(|| ParseDfgError::UnknownKind {
                            line: line_no,
                            kind: kind_str.to_string(),
                        })?;
                    let imm = match parts.next() {
                        Some(tok) => Some(
                            tok.parse::<u64>()
                                .map_err(|_| ParseDfgError::BadLine { line: line_no })?,
                        ),
                        None => None,
                    };
                    builder
                        .get_or_insert_with(|| DfgBuilder::new(name.clone()))
                        .push_op(crate::Op {
                            kind,
                            name: op_name.to_string(),
                            imm,
                        });
                    declared += 1;
                }
                Some("edge") => {
                    let src: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseDfgError::BadLine { line: line_no })?;
                    let dst: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseDfgError::BadLine { line: line_no })?;
                    pending_edges.push((line_no, src, dst, 0));
                }
                Some("back") => {
                    let src: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseDfgError::BadLine { line: line_no })?;
                    let dst: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseDfgError::BadLine { line: line_no })?;
                    let dist: u32 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseDfgError::BadLine { line: line_no })?;
                    if dist == 0 {
                        return Err(ParseDfgError::BadLine { line: line_no });
                    }
                    pending_edges.push((line_no, src, dst, dist));
                }
                _ => return Err(ParseDfgError::BadLine { line: line_no }),
            }
        }

        let mut b = builder.unwrap_or_else(|| DfgBuilder::new(name));
        for (line, src, dst, dist) in pending_edges {
            if src >= declared || dst >= declared {
                return Err(ParseDfgError::DanglingId { line });
            }
            let (s, d) = (OpId::from_index(src), OpId::from_index(dst));
            if dist == 0 {
                b.data(s, d);
            } else {
                b.back(s, d, dist);
            }
        }
        b.build().map_err(ParseDfgError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernels, KernelId, KernelScale, Op};

    #[test]
    fn round_trip_all_kernels() {
        for id in KernelId::ALL {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            let text = dfg.to_text();
            let back = Dfg::from_text(&text).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(back.num_ops(), dfg.num_ops(), "{id}");
            assert_eq!(back.num_deps(), dfg.num_deps(), "{id}");
            assert_eq!(back.num_back_edges(), dfg.num_back_edges(), "{id}");
            assert_eq!(back.stats(), dfg.stats(), "{id}");
        }
    }

    #[test]
    fn parses_hand_written_format() {
        let text = "
            # a tiny MAC
            dfg mac
            op 0 ld a
            op 1 ld b
            op 2 mul m
            op 3 add acc
            edge 0 2
            edge 1 2
            edge 2 3
            back 3 3 1
        ";
        let dfg = Dfg::from_text(text).unwrap();
        assert_eq!(dfg.name(), "mac");
        assert_eq!(dfg.num_ops(), 4);
        assert_eq!(dfg.num_back_edges(), 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            Dfg::from_text("bogus directive"),
            Err(ParseDfgError::BadLine { line: 1 })
        ));
        assert!(matches!(
            Dfg::from_text("op 0 frobnicate x"),
            Err(ParseDfgError::UnknownKind { .. })
        ));
        assert!(matches!(
            Dfg::from_text("op 1 add x"),
            Err(ParseDfgError::NonDenseId { line: 1 })
        ));
        assert!(matches!(
            Dfg::from_text("op 0 add x\nedge 0 5"),
            Err(ParseDfgError::DanglingId { line: 2 })
        ));
        assert!(matches!(
            Dfg::from_text("op 0 add x\nback 0 0 0"),
            Err(ParseDfgError::BadLine { line: 2 })
        ));
        // data cycle
        assert!(matches!(
            Dfg::from_text("op 0 add x\nop 1 add y\nedge 0 1\nedge 1 0"),
            Err(ParseDfgError::Invalid(_))
        ));
    }

    #[test]
    fn immediates_round_trip() {
        let mut b = crate::DfgBuilder::new("imm");
        let c = b.push_op(Op::constant("c0", 77));
        let plain = b.op(OpKind::Const, "c1");
        let s = b.op(OpKind::Store, "out");
        b.data(c, s);
        b.data(plain, s);
        let dfg = b.build().unwrap();
        let text = dfg.to_text();
        assert!(text.contains("op 0 cst c0 77"), "{text}");
        let back = Dfg::from_text(&text).unwrap();
        assert_eq!(back.op(c).imm, Some(77));
        assert_eq!(back.op(plain).imm, None);
        // a non-integer trailing token is rejected, not silently dropped
        assert!(matches!(
            Dfg::from_text("op 0 cst c zzz"),
            Err(ParseDfgError::BadLine { line: 1 })
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let dfg = Dfg::from_text("\n# comment only\ndfg t\nop 0 cst c # trailing\n\n").unwrap();
        assert_eq!(dfg.num_ops(), 1);
    }

    #[test]
    fn error_messages() {
        assert!(ParseDfgError::BadLine { line: 7 }
            .to_string()
            .contains("line 7"));
        assert!(ParseDfgError::UnknownKind {
            line: 2,
            kind: "q".into()
        }
        .to_string()
        .contains('q'));
    }
}
