//! Operation kinds carried by DFG nodes.

use std::fmt;

/// The kind of a DFG operation.
///
/// The set mirrors what a CGRA ALU executes in one cycle (the paper's PEs
/// are single-cycle ALUs); memory operations additionally require a PE with
/// memory-bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Memory load (needs a memory-capable PE).
    Load,
    /// Memory store (needs a memory-capable PE).
    Store,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Shift (left/right).
    Shift,
    /// Bitwise logic (and/or/xor).
    Logic,
    /// Comparison.
    Cmp,
    /// Two-way select (predicated move).
    Select,
    /// Loop-invariant constant materialisation.
    Const,
}

impl OpKind {
    /// Whether this operation must be placed on a memory-capable PE.
    pub fn needs_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Execution latency in cycles. All ALU and memory operations complete
    /// in a single cycle on the modelled CGRA, matching the paper's
    /// single-cycle PE assumption.
    pub fn latency(self) -> u32 {
        1
    }

    /// Short mnemonic, used in DOT dumps and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Shift => "shl",
            OpKind::Logic => "and",
            OpKind::Cmp => "cmp",
            OpKind::Select => "sel",
            OpKind::Const => "cst",
        }
    }

    /// All operation kinds, for exhaustive iteration in tests.
    pub const ALL: [OpKind; 10] = [
        OpKind::Load,
        OpKind::Store,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Shift,
        OpKind::Logic,
        OpKind::Cmp,
        OpKind::Select,
        OpKind::Const,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One DFG operation: a kind plus a human-readable name for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Diagnostic name (e.g. `"mul_3_7"`); not semantically meaningful.
    pub name: String,
    /// Explicit immediate value. Only meaningful on [`OpKind::Const`]:
    /// a `Const` with an immediate produces exactly this value, while a
    /// `Const` without one produces a value derived from its name. The
    /// optimizer uses immediates to materialise folded constant subgraphs.
    pub imm: Option<u64>,
}

impl Op {
    /// Creates an operation with the given kind and name.
    pub fn new(kind: OpKind, name: impl Into<String>) -> Self {
        Op {
            kind,
            name: name.into(),
            imm: None,
        }
    }

    /// Creates a `Const` operation carrying an explicit immediate value.
    pub fn constant(name: impl Into<String>, value: u64) -> Self {
        Op {
            kind: OpKind::Const,
            name: name.into(),
            imm: Some(value),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(OpKind::Load.needs_memory());
        assert!(OpKind::Store.needs_memory());
        assert!(!OpKind::Add.needs_memory());
        assert!(!OpKind::Const.needs_memory());
    }

    #[test]
    fn all_kinds_have_unit_latency_and_mnemonics() {
        for k in OpKind::ALL {
            assert_eq!(k.latency(), 1);
            assert!(!k.mnemonic().is_empty());
        }
    }

    #[test]
    fn display_round_trip() {
        let op = Op::new(OpKind::Mul, "m0");
        assert_eq!(op.to_string(), "mul:m0");
    }

    #[test]
    fn constant_carries_immediate() {
        let op = Op::constant("c0", 42);
        assert_eq!(op.kind, OpKind::Const);
        assert_eq!(op.imm, Some(42));
        assert_eq!(Op::new(OpKind::Const, "c1").imm, None);
    }
}
