//! Structure-preserving DFG reduction steps used by the fuzzing harness.
//!
//! Each step produces a *new* [`Dfg`] that is strictly smaller (fewer ops
//! or fewer deps) and still passes [`Dfg::validate`]. The fuzzer composes
//! these into a greedy fixpoint search for a minimal failing reproducer;
//! keeping the primitives here means any tool with a `Dfg` in hand can
//! reduce it.

use crate::{Dep, Dfg, DfgBuilder, OpId};

/// Rebuilds `dfg` without the dependency at `edge_index` (the position in
/// [`Dfg::deps`] iteration order). Returns `None` when the index is out of
/// range or the reduced graph fails validation.
pub fn without_dep(dfg: &Dfg, edge_index: usize) -> Option<Dfg> {
    if edge_index >= dfg.num_deps() {
        return None;
    }
    let mut b = DfgBuilder::new(dfg.name());
    for v in dfg.op_ids() {
        b.push_op(dfg.op(v).clone());
    }
    for (i, e) in dfg.deps().enumerate() {
        if i == edge_index {
            continue;
        }
        add_dep(&mut b, e.src, e.dst, *e.weight);
    }
    b.build().ok()
}

/// Rebuilds `dfg` without op `victim`, bridging dependencies across it:
/// for every producer `p → victim` (distance `a`) and consumer
/// `victim → c` (distance `b`) a bridge `p → c` with distance `a + b` is
/// added, so loop-carried behaviour along surviving paths is preserved.
///
/// Returns `None` when the graph has a single op left, the bridge set
/// would introduce a zero-distance self edge, or validation fails.
pub fn without_op(dfg: &Dfg, victim: OpId) -> Option<Dfg> {
    if dfg.num_ops() <= 1 || victim.index() >= dfg.num_ops() {
        return None;
    }
    let mut b = DfgBuilder::new(dfg.name());
    // Old-id -> new-id map; the victim's slot stays `None`.
    let mut remap: Vec<Option<OpId>> = Vec::with_capacity(dfg.num_ops());
    for v in dfg.op_ids() {
        if v == victim {
            remap.push(None);
        } else {
            remap.push(Some(b.push_op(dfg.op(v).clone())));
        }
    }
    let mapped = |v: OpId| remap[v.index()];
    let mut bridges: Vec<(OpId, OpId, u32)> = Vec::new();
    for e in dfg.deps() {
        match (mapped(e.src), mapped(e.dst)) {
            (Some(src), Some(dst)) => add_dep(&mut b, src, dst, *e.weight),
            _ => {
                // Edge touches the victim: collect for bridging below.
            }
        }
    }
    for into in dfg.graph().incoming(victim) {
        let Some(p) = mapped(into.src) else {
            continue; // self edge on the victim: drops with it
        };
        for out in dfg.graph().outgoing(victim) {
            let Some(c) = mapped(out.dst) else { continue };
            let distance = into.weight.distance() + out.weight.distance();
            if p == c && distance == 0 {
                // A data self-cycle would be invalid; it also cannot arise
                // from a valid graph (p -> victim -> p over data edges is a
                // cycle), so refuse rather than silently mis-bridge.
                return None;
            }
            bridges.push((p, c, distance));
        }
    }
    bridges.sort_unstable_by_key(|&(p, c, d)| (p.index(), c.index(), d));
    bridges.dedup();
    for (p, c, distance) in bridges {
        if distance == 0 {
            b.data(p, c);
        } else {
            b.back(p, c, distance);
        }
    }
    b.build().ok()
}

/// Indices (in [`Dfg::deps`] order) of all loop-carried dependencies.
pub fn back_edge_indices(dfg: &Dfg) -> Vec<usize> {
    dfg.deps()
        .enumerate()
        .filter(|(_, e)| e.weight.is_back())
        .map(|(i, _)| i)
        .collect()
}

/// Indices (in [`Dfg::deps`] order) of data deps whose destination has
/// more than one incoming data dep — candidates for fan-in reduction that
/// keep every op fed.
pub fn redundant_fanin_indices(dfg: &Dfg) -> Vec<usize> {
    let mut data_in = vec![0usize; dfg.num_ops()];
    for e in dfg.deps() {
        if !e.weight.is_back() {
            data_in[e.dst.index()] += 1;
        }
    }
    dfg.deps()
        .enumerate()
        .filter(|(_, e)| !e.weight.is_back() && data_in[e.dst.index()] > 1)
        .map(|(i, _)| i)
        .collect()
}

fn add_dep(b: &mut DfgBuilder, src: OpId, dst: OpId, dep: Dep) {
    match dep {
        Dep::Data => b.data(src, dst),
        Dep::Back { distance } => b.back(src, dst, distance),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn chain_with_back() -> Dfg {
        // ld -> add -> st, back edge add -> add distance 2
        let mut b = DfgBuilder::new("chain");
        let ld = b.op(OpKind::Load, "ld");
        let add = b.op(OpKind::Add, "add");
        let st = b.op(OpKind::Store, "st");
        b.data(ld, add);
        b.data(add, st);
        b.back(add, add, 2);
        b.build().unwrap()
    }

    #[test]
    fn without_dep_removes_exactly_one_edge() {
        let dfg = chain_with_back();
        let smaller = without_dep(&dfg, 2).unwrap();
        assert_eq!(smaller.num_deps(), 2);
        assert_eq!(smaller.num_back_edges(), 0);
        assert_eq!(smaller.num_ops(), 3);
        assert!(without_dep(&dfg, 99).is_none());
    }

    #[test]
    fn without_op_bridges_through_victim() {
        let dfg = chain_with_back();
        let add = dfg.op_ids().nth(1).unwrap();
        let smaller = without_op(&dfg, add).unwrap();
        assert_eq!(smaller.num_ops(), 2);
        // ld -> st data bridge survives; the back self-edge had distance 2
        // and bridges into back[4] on... nothing else, so only the data
        // bridge plus the self-bridge through the back edge remain.
        assert!(smaller.validate().is_ok());
        let has_data_bridge = smaller
            .deps()
            .any(|e| !e.weight.is_back() && e.src != e.dst);
        assert!(has_data_bridge, "load should now feed the store directly");
    }

    #[test]
    fn without_op_preserves_back_distance_sums() {
        // a -back[1]-> b -back[2]-> c; removing b must give a -back[3]-> c
        let mut bld = DfgBuilder::new("dist");
        let a = bld.op(OpKind::Add, "a");
        let b = bld.op(OpKind::Add, "b");
        let c = bld.op(OpKind::Add, "c");
        bld.back(a, b, 1);
        bld.back(b, c, 2);
        let dfg = bld.build().unwrap();
        let smaller = without_op(&dfg, b).unwrap();
        let bridge = smaller.deps().next().unwrap();
        assert_eq!(bridge.weight.distance(), 3);
    }

    #[test]
    fn without_op_refuses_last_op() {
        let mut b = DfgBuilder::new("one");
        let v = b.op(OpKind::Const, "c");
        let dfg = b.build().unwrap();
        assert!(without_op(&dfg, v).is_none());
    }

    #[test]
    fn helper_index_sets() {
        let dfg = chain_with_back();
        assert_eq!(back_edge_indices(&dfg), vec![2]);
        // add has exactly one incoming data edge: nothing redundant.
        assert!(redundant_fanin_indices(&dfg).is_empty());
    }
}
