//! The [`Dfg`] type, its builder, and structural validation.

use crate::{Op, OpId, OpKind};
use panorama_graph::{Digraph, DotOptions, EdgeRef};
use std::error::Error;
use std::fmt;

/// A data dependency between two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dep {
    /// Intra-iteration dependency: consumer runs after producer within the
    /// same loop iteration.
    Data,
    /// Loop-carried (inter-iteration) dependency: the value produced in
    /// iteration `i` is consumed in iteration `i + distance`.
    Back {
        /// Iteration distance (≥ 1).
        distance: u32,
    },
}

impl Dep {
    /// Returns `true` for loop-carried edges.
    pub fn is_back(self) -> bool {
        matches!(self, Dep::Back { .. })
    }

    /// Iteration distance: 0 for intra-iteration edges.
    pub fn distance(self) -> u32 {
        match self {
            Dep::Data => 0,
            Dep::Back { distance } => distance,
        }
    }
}

impl fmt::Display for Dep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dep::Data => Ok(()),
            Dep::Back { distance } => write!(f, "back[{distance}]"),
        }
    }
}

/// Structural error detected by [`Dfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// The intra-iteration (non-back) edges form a cycle.
    DataCycle {
        /// A node on or downstream of the cycle.
        witness: OpId,
    },
    /// A back edge was recorded with distance 0.
    ZeroDistanceBackEdge {
        /// Source of the offending edge.
        src: OpId,
        /// Destination of the offending edge.
        dst: OpId,
    },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::DataCycle { witness } => {
                write!(f, "intra-iteration edges form a cycle through {witness}")
            }
            DfgError::ZeroDistanceBackEdge { src, dst } => {
                write!(f, "back edge {src}→{dst} has iteration distance 0")
            }
        }
    }
}

impl Error for DfgError {}

/// Dataflow graph of a loop body.
///
/// # Examples
///
/// ```
/// use panorama_dfg::{DfgBuilder, OpKind};
///
/// let mut b = DfgBuilder::new("axpy");
/// let x = b.op(OpKind::Load, "x");
/// let a = b.op(OpKind::Const, "a");
/// let m = b.op(OpKind::Mul, "ax");
/// let s = b.op(OpKind::Store, "out");
/// b.data(x, m);
/// b.data(a, m);
/// b.data(m, s);
/// let dfg = b.build()?;
/// assert_eq!(dfg.num_ops(), 4);
/// # Ok::<(), panorama_dfg::DfgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dfg {
    name: String,
    graph: Digraph<Op, Dep>,
}

impl Dfg {
    /// Kernel name this DFG was generated from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Underlying graph (read-only).
    pub fn graph(&self) -> &Digraph<Op, Dep> {
        &self.graph
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of dependencies (including back edges).
    pub fn num_deps(&self) -> usize {
        self.graph.edge_count()
    }

    /// The operation payload of `op`.
    pub fn op(&self, op: OpId) -> &Op {
        self.graph.node(op)
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl DoubleEndedIterator<Item = OpId> + ExactSizeIterator {
        self.graph.node_ids()
    }

    /// Iterates over all dependency edges.
    pub fn deps(&self) -> impl Iterator<Item = EdgeRef<'_, Dep>> {
        self.graph.edge_refs()
    }

    /// Number of memory operations (loads + stores).
    pub fn num_mem_ops(&self) -> usize {
        self.op_ids()
            .filter(|&v| self.op(v).kind.needs_memory())
            .count()
    }

    /// Number of loop-carried (back) edges.
    pub fn num_back_edges(&self) -> usize {
        self.deps().filter(|e| e.weight.is_back()).count()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// * [`DfgError::DataCycle`] when intra-iteration edges are cyclic
    ///   (a loop body must be acyclic once back edges are removed);
    /// * [`DfgError::ZeroDistanceBackEdge`] for a malformed back edge.
    pub fn validate(&self) -> Result<(), DfgError> {
        for e in self.deps() {
            if let Dep::Back { distance: 0 } = e.weight {
                return Err(DfgError::ZeroDistanceBackEdge {
                    src: e.src,
                    dst: e.dst,
                });
            }
        }
        self.graph
            .topo_order_filtered(|e| !e.weight.is_back())
            .map(|_| ())
            .map_err(|c| DfgError::DataCycle { witness: c.witness })
    }

    /// Topological order of operations over intra-iteration edges.
    ///
    /// # Panics
    ///
    /// Panics when the DFG is invalid; call [`Dfg::validate`] first for
    /// untrusted graphs.
    pub fn topo_order(&self) -> Vec<OpId> {
        self.graph
            .topo_order_filtered(|e| !e.weight.is_back())
            .expect("validated DFG has acyclic data edges")
    }

    /// Renders the DFG in Graphviz DOT form; back edges are labelled with
    /// their iteration distance.
    pub fn to_dot(&self) -> String {
        let options = DotOptions {
            name: self.name.replace(|c: char| !c.is_alphanumeric(), "_"),
            rankdir: "TB".into(),
        };
        self.graph.to_dot(
            &options,
            |id, op| format!("{} {}", id, op.kind),
            |e| e.weight.to_string(),
        )
    }

    /// Per-kind operation histogram.
    pub fn kind_histogram(&self) -> Vec<(OpKind, usize)> {
        OpKind::ALL
            .iter()
            .map(|&k| (k, self.op_ids().filter(|&v| self.op(v).kind == k).count()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

/// Incremental builder for [`Dfg`].
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    graph: Digraph<Op, Dep>,
}

impl DfgBuilder {
    /// Starts a DFG named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            graph: Digraph::new(),
        }
    }

    /// Adds an operation.
    pub fn op(&mut self, kind: OpKind, name: impl Into<String>) -> OpId {
        self.graph.add_node(Op::new(kind, name))
    }

    /// Adds a pre-built operation, preserving any immediate payload.
    /// Rewrite and reduction passes use this to copy ops verbatim.
    pub fn push_op(&mut self, op: Op) -> OpId {
        self.graph.add_node(op)
    }

    /// Adds an intra-iteration data dependency `src → dst`.
    pub fn data(&mut self, src: OpId, dst: OpId) {
        self.graph.add_edge(src, dst, Dep::Data);
    }

    /// Adds a loop-carried dependency `src → dst` with iteration
    /// `distance`.
    ///
    /// # Panics
    ///
    /// Panics when `distance == 0`; use [`DfgBuilder::data`] for
    /// intra-iteration edges.
    pub fn back(&mut self, src: OpId, dst: OpId, distance: u32) {
        assert!(distance > 0, "back edges must have distance >= 1");
        self.graph.add_edge(src, dst, Dep::Back { distance });
    }

    /// Current number of operations added.
    pub fn num_ops(&self) -> usize {
        self.graph.node_count()
    }

    /// Finishes the DFG, validating its structure.
    ///
    /// # Errors
    ///
    /// Propagates [`Dfg::validate`] failures.
    pub fn build(self) -> Result<Dfg, DfgError> {
        let dfg = Dfg {
            name: self.name,
            graph: self.graph,
        };
        dfg.validate()?;
        Ok(dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac_kernel() -> Dfg {
        // acc = acc + a[i]*b[i]  — one back edge on the accumulator
        let mut b = DfgBuilder::new("mac");
        let a = b.op(OpKind::Load, "a");
        let x = b.op(OpKind::Load, "b");
        let m = b.op(OpKind::Mul, "m");
        let acc = b.op(OpKind::Add, "acc");
        b.data(a, m);
        b.data(x, m);
        b.data(m, acc);
        b.back(acc, acc, 1);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_dfg() {
        let dfg = mac_kernel();
        assert_eq!(dfg.num_ops(), 4);
        assert_eq!(dfg.num_deps(), 4);
        assert_eq!(dfg.num_mem_ops(), 2);
        assert_eq!(dfg.num_back_edges(), 1);
        assert_eq!(dfg.name(), "mac");
    }

    #[test]
    fn topo_order_ignores_back_edges() {
        let dfg = mac_kernel();
        let order = dfg.topo_order();
        assert_eq!(order.len(), 4);
        // acc comes last
        assert_eq!(dfg.op(order[3]).name, "acc");
    }

    #[test]
    fn data_cycle_is_rejected() {
        let mut b = DfgBuilder::new("bad");
        let x = b.op(OpKind::Add, "x");
        let y = b.op(OpKind::Add, "y");
        b.data(x, y);
        b.data(y, x);
        assert!(matches!(b.build(), Err(DfgError::DataCycle { .. })));
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_back_edge_panics_in_builder() {
        let mut b = DfgBuilder::new("bad");
        let x = b.op(OpKind::Add, "x");
        b.back(x, x, 0);
    }

    #[test]
    fn dot_output_mentions_back_edges() {
        let dfg = mac_kernel();
        let dot = dfg.to_dot();
        assert!(dot.contains("back[1]"));
        assert!(dot.contains("mul"));
    }

    #[test]
    fn kind_histogram_counts() {
        let dfg = mac_kernel();
        let hist = dfg.kind_histogram();
        assert!(hist.contains(&(OpKind::Load, 2)));
        assert!(hist.contains(&(OpKind::Mul, 1)));
        assert!(hist.contains(&(OpKind::Add, 1)));
        assert!(!hist.iter().any(|&(k, _)| k == OpKind::Store));
    }

    #[test]
    fn dep_accessors() {
        assert!(Dep::Back { distance: 2 }.is_back());
        assert!(!Dep::Data.is_back());
        assert_eq!(Dep::Data.distance(), 0);
        assert_eq!(Dep::Back { distance: 3 }.distance(), 3);
        assert_eq!(Dep::Back { distance: 3 }.to_string(), "back[3]");
    }

    #[test]
    fn error_displays() {
        let e = DfgError::DataCycle {
            witness: OpId::from_index(2),
        };
        assert!(e.to_string().contains("cycle"));
    }
}
