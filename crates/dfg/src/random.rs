//! Random layered-DAG generation for tests and fuzzing.

use crate::{Dfg, DfgBuilder, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDfgConfig {
    /// RNG seed: identical configs generate identical DFGs.
    pub seed: u64,
    /// Number of operation layers.
    pub layers: usize,
    /// Operations per layer.
    pub width: usize,
    /// Extra fan-in edges per node beyond the first (0–this many, random).
    pub extra_fanin: usize,
    /// Number of loop-carried accumulator chains to thread through.
    pub back_edges: usize,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            seed: 7,
            layers: 6,
            width: 8,
            extra_fanin: 2,
            back_edges: 1,
        }
    }
}

/// Generates a random layered DAG shaped like a loop-kernel DFG: a load
/// layer feeding compute layers feeding a store layer, with optional
/// loop-carried accumulators.
///
/// The result always passes [`Dfg::validate`].
///
/// # Examples
///
/// ```
/// use panorama_dfg::{random_dfg, RandomDfgConfig};
///
/// let dfg = random_dfg(&RandomDfgConfig::default());
/// assert!(dfg.validate().is_ok());
/// ```
pub fn random_dfg(config: &RandomDfgConfig) -> Dfg {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = DfgBuilder::new(format!("random_{}", config.seed));
    let compute_kinds = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Shift,
        OpKind::Logic,
        OpKind::Cmp,
        OpKind::Select,
    ];

    let mut layers: Vec<Vec<crate::OpId>> = Vec::new();
    // layer 0: loads
    let loads: Vec<_> = (0..config.width.max(1))
        .map(|i| b.op(OpKind::Load, format!("ld{i}")))
        .collect();
    layers.push(loads);

    for l in 1..config.layers.max(2) {
        let prev = layers.last().expect("at least one layer").clone();
        let mut layer = Vec::new();
        for i in 0..config.width.max(1) {
            let kind = compute_kinds[rng.gen_range(0..compute_kinds.len())];
            let v = b.op(kind, format!("c{l}_{i}"));
            // at least one producer from the previous layer keeps it a DAG
            let p = prev[rng.gen_range(0..prev.len())];
            b.data(p, v);
            for _ in 0..rng.gen_range(0..=config.extra_fanin) {
                // extra producers from any earlier layer
                let src_layer = &layers[rng.gen_range(0..layers.len())];
                let p = src_layer[rng.gen_range(0..src_layer.len())];
                b.data(p, v);
            }
            layer.push(v);
        }
        layers.push(layer);
    }

    // final layer: stores consuming the last compute layer
    let last = layers.last().expect("layers nonempty").clone();
    for (i, &v) in last.iter().enumerate().take((config.width / 2).max(1)) {
        let s = b.op(OpKind::Store, format!("st{i}"));
        b.data(v, s);
    }

    // loop-carried accumulators: back edge from a late node to an early one
    for i in 0..config.back_edges {
        let late_layer = &layers[layers.len() - 1];
        let early_layer = &layers[1.min(layers.len() - 1)];
        let src = late_layer[i % late_layer.len()];
        let dst = early_layer[i % early_layer.len()];
        b.back(src, dst, 1 + (i as u32 % 2));
    }

    b.build()
        .expect("layered construction is acyclic over data edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RandomDfgConfig::default();
        let a = random_dfg(&cfg);
        let b = random_dfg(&cfg);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_dfg(&RandomDfgConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_dfg(&RandomDfgConfig {
            seed: 2,
            ..Default::default()
        });
        // edge structure almost surely differs
        assert!(a.stats() != b.stats() || a.to_dot() != b.to_dot());
    }

    #[test]
    fn always_valid_across_configs() {
        for layers in [2, 4, 9] {
            for width in [1, 3, 12] {
                for back in [0, 2] {
                    let dfg = random_dfg(&RandomDfgConfig {
                        seed: 42,
                        layers,
                        width,
                        extra_fanin: 3,
                        back_edges: back,
                    });
                    dfg.validate().unwrap();
                    assert_eq!(dfg.num_back_edges(), back);
                }
            }
        }
    }

    #[test]
    fn contains_loads_and_stores() {
        let dfg = random_dfg(&RandomDfgConfig::default());
        assert!(dfg.num_mem_ops() >= 2);
    }
}
