//! Random layered-DAG generation for tests and fuzzing.

use crate::{Dfg, DfgBuilder, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDfgConfig {
    /// RNG seed: identical configs generate identical DFGs.
    pub seed: u64,
    /// Number of operation layers.
    pub layers: usize,
    /// Operations per layer.
    pub width: usize,
    /// Extra fan-in edges per node beyond the first (0–this many, random).
    pub extra_fanin: usize,
    /// Number of loop-carried accumulator chains to thread through.
    pub back_edges: usize,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            seed: 7,
            layers: 6,
            width: 8,
            extra_fanin: 2,
            back_edges: 1,
        }
    }
}

/// Generates a random layered DAG shaped like a loop-kernel DFG: a load
/// layer feeding compute layers feeding a store layer, with optional
/// loop-carried accumulators.
///
/// The result always passes [`Dfg::validate`] and is connected (ignoring
/// edge direction): unconsumed loads are wired into the first compute
/// layer, and stray parallel chains are joined through deterministic
/// bridge edges — both without extra RNG draws, so the graph for a given
/// config is stable.
///
/// # Examples
///
/// ```
/// use panorama_dfg::{random_dfg, RandomDfgConfig};
///
/// let dfg = random_dfg(&RandomDfgConfig::default());
/// assert!(dfg.validate().is_ok());
/// ```
pub fn random_dfg(config: &RandomDfgConfig) -> Dfg {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = DfgBuilder::new(format!("random_{}", config.seed));
    let compute_kinds = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Shift,
        OpKind::Logic,
        OpKind::Cmp,
        OpKind::Select,
    ];
    // Undirected edge list mirroring every builder edge, for the
    // connectivity pass at the end.
    let mut und: Vec<(usize, usize)> = Vec::new();

    let mut layers: Vec<Vec<crate::OpId>> = Vec::new();
    // layer 0: loads
    let loads: Vec<_> = (0..config.width.max(1))
        .map(|i| b.op(OpKind::Load, format!("ld{i}")))
        .collect();
    layers.push(loads.clone());
    let mut load_used = vec![false; loads.len()];

    for l in 1..config.layers.max(2) {
        let prev = layers.last().expect("at least one layer").clone();
        let mut layer = Vec::new();
        for i in 0..config.width.max(1) {
            let kind = compute_kinds[rng.gen_range(0..compute_kinds.len())];
            let v = b.op(kind, format!("c{l}_{i}"));
            // at least one producer from the previous layer keeps it a DAG
            let p = prev[rng.gen_range(0..prev.len())];
            b.data(p, v);
            und.push((p.index(), v.index()));
            if l == 1 {
                load_used[p.index()] = true;
            }
            for _ in 0..rng.gen_range(0..=config.extra_fanin) {
                // extra producers from any earlier layer
                let src_idx = rng.gen_range(0..layers.len());
                let src_layer = &layers[src_idx];
                let p = src_layer[rng.gen_range(0..src_layer.len())];
                b.data(p, v);
                und.push((p.index(), v.index()));
                if src_idx == 0 {
                    load_used[p.index()] = true;
                }
            }
            layer.push(v);
        }
        layers.push(layer);
    }

    // Every load must feed something, or it floats free of the graph.
    // Wire unconsumed loads into the first compute layer round-robin.
    let first_compute = layers[1].clone();
    for (i, &ld) in loads.iter().enumerate() {
        if !load_used[i] {
            let dst = first_compute[i % first_compute.len()];
            b.data(ld, dst);
            und.push((ld.index(), dst.index()));
        }
    }

    // final layer: stores consuming the last compute layer
    let last = layers.last().expect("layers nonempty").clone();
    for (i, &v) in last.iter().enumerate().take((config.width / 2).max(1)) {
        let s = b.op(OpKind::Store, format!("st{i}"));
        b.data(v, s);
        und.push((v.index(), s.index()));
    }

    // loop-carried accumulators: back edge from a late node to an early one
    for i in 0..config.back_edges {
        let late_layer = &layers[layers.len() - 1];
        let early_layer = &layers[1.min(layers.len() - 1)];
        let src = late_layer[i % late_layer.len()];
        let dst = early_layer[i % early_layer.len()];
        b.back(src, dst, 1 + (i as u32 % 2));
        und.push((src.index(), dst.index()));
    }

    // Connectivity pass: with narrow fan-in the layered construction can
    // leave parallel chains that never touch. Union-find the undirected
    // components and bridge every stray one with a data edge from a
    // main-component node in a strictly earlier layer (which preserves
    // acyclicity and keeps fan-out spread like ordinary layer edges).
    let n = b.num_ops();
    let mut layer_of = vec![0usize; n];
    for (l, layer) in layers.iter().enumerate() {
        for &v in layer {
            layer_of[v.index()] = l;
        }
    }
    // Stores sit one layer past the last compute layer.
    let placed = layers.iter().map(Vec::len).sum::<usize>();
    for slot in layer_of.iter_mut().take(n).skip(placed) {
        *slot = layers.len();
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]]; // path halving
            v = parent[v];
        }
        v
    }
    for &(a, c) in &und {
        let (ra, rc) = (find(&mut parent, a), find(&mut parent, c));
        parent[ra] = rc;
    }
    let main = find(&mut parent, loads[0].index());
    // Loads are all consumed by now, so every stray component contains a
    // compute or store op (index >= the load count) to bridge into; its
    // lowest-index member is its earliest-layer op.
    for v in loads.len()..n {
        let root = find(&mut parent, v);
        if root == main {
            continue;
        }
        let lv = layer_of[v];
        // Deepest main-component op still strictly below layer `lv`;
        // load 0 (layer 0) always qualifies, so `src` is never None.
        let mut src = None;
        for u in 0..n {
            if layer_of[u] < lv && find(&mut parent, u) == main {
                match src {
                    Some(s) if layer_of[s] >= layer_of[u] => {}
                    _ => src = Some(u),
                }
            }
        }
        let src = src.expect("load 0 is in the main component at layer 0");
        b.data(crate::OpId::from_index(src), crate::OpId::from_index(v));
        parent[root] = main;
    }

    b.build()
        .expect("layered construction is acyclic over data edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RandomDfgConfig::default();
        let a = random_dfg(&cfg);
        let b = random_dfg(&cfg);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_dfg(&RandomDfgConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_dfg(&RandomDfgConfig {
            seed: 2,
            ..Default::default()
        });
        // edge structure almost surely differs
        assert!(a.stats() != b.stats() || a.to_dot() != b.to_dot());
    }

    #[test]
    fn always_valid_across_configs() {
        for layers in [2, 4, 9] {
            for width in [1, 3, 12] {
                for back in [0, 2] {
                    let dfg = random_dfg(&RandomDfgConfig {
                        seed: 42,
                        layers,
                        width,
                        extra_fanin: 3,
                        back_edges: back,
                    });
                    dfg.validate().unwrap();
                    assert_eq!(dfg.num_back_edges(), back);
                }
            }
        }
    }

    #[test]
    fn contains_loads_and_stores() {
        let dfg = random_dfg(&RandomDfgConfig::default());
        assert!(dfg.num_mem_ops() >= 2);
    }

    /// Undirected connectivity: every op reachable from op 0 ignoring
    /// edge direction.
    fn is_connected(dfg: &Dfg) -> bool {
        if dfg.num_ops() == 0 {
            return true;
        }
        let start = dfg.op_ids().next().expect("nonempty");
        dfg.graph()
            .undirected_bfs_distances(start)
            .iter()
            .all(|&d| d != usize::MAX)
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn generated_dfgs_are_valid_connected_and_sized(
            seed in proptest::prelude::any::<u64>(),
            layers in 2usize..7,
            width in 1usize..7,
            extra_fanin in 0usize..4,
            back_edges in 0usize..4,
        ) {
            let cfg = RandomDfgConfig { seed, layers, width, extra_fanin, back_edges };
            let dfg = random_dfg(&cfg);
            // Acyclic modulo back edges (validate checks exactly this).
            proptest::prop_assert!(dfg.validate().is_ok());
            // Respect layers x width bounds: loads + compute + stores.
            let expected = layers.max(2) * width.max(1) + (width / 2).max(1);
            proptest::prop_assert_eq!(dfg.num_ops(), expected);
            proptest::prop_assert_eq!(dfg.num_back_edges(), back_edges);
            // Connected: no orphan loads or floating parallel chains.
            proptest::prop_assert!(is_connected(&dfg));
        }

        #[test]
        fn identical_seeds_are_byte_identical(
            seed in proptest::prelude::any::<u64>(),
            layers in 2usize..6,
            width in 1usize..6,
        ) {
            let cfg = RandomDfgConfig { seed, layers, width, extra_fanin: 2, back_edges: 2 };
            let a = random_dfg(&cfg).to_text();
            let b = random_dfg(&cfg).to_text();
            proptest::prop_assert_eq!(a, b);
        }
    }
}
