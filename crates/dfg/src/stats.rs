//! DFG statistics as reported in the paper's Table 1a.

use crate::Dfg;
use std::fmt;

/// Summary statistics of a DFG (the "DFG Characteristics" columns of
/// Table 1a plus a few extras used elsewhere in the evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfgStats {
    /// Operation count.
    pub nodes: usize,
    /// Dependency count (including back edges).
    pub edges: usize,
    /// Maximum node degree (in + out), the paper's complexity indicator.
    pub max_degree: usize,
    /// Memory operations (loads + stores).
    pub mem_ops: usize,
    /// Loop-carried dependencies.
    pub back_edges: usize,
}

impl Dfg {
    /// Computes summary statistics.
    pub fn stats(&self) -> DfgStats {
        DfgStats {
            nodes: self.num_ops(),
            edges: self.num_deps(),
            max_degree: self.graph().max_degree(),
            mem_ops: self.num_mem_ops(),
            back_edges: self.num_back_edges(),
        }
    }
}

impl fmt::Display for DfgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, max degree {}, {} mem ops, {} back edges",
            self.nodes, self.edges, self.max_degree, self.mem_ops, self.back_edges
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{DfgBuilder, OpKind};

    #[test]
    fn stats_match_structure() {
        let mut b = DfgBuilder::new("t");
        let l = b.op(OpKind::Load, "l");
        let a = b.op(OpKind::Add, "a");
        let s = b.op(OpKind::Store, "s");
        b.data(l, a);
        b.data(a, s);
        b.back(a, a, 1);
        let stats = b.build().unwrap().stats();
        assert_eq!(stats.nodes, 3);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.mem_ops, 2);
        assert_eq!(stats.back_edges, 1);
        // 'a' has degree 4 (in: l, back-in; out: s, back-out)
        assert_eq!(stats.max_degree, 4);
        assert!(stats.to_string().contains("3 nodes"));
    }
}
