//! Linear-algebra kernels: matrix multiply and matrix inversion.

use super::{KernelBuilder, KernelScale};
use crate::{Dfg, OpId, OpKind};

/// Matrix multiply: a 1×`cols` output strip of `depth`-deep inner products.
/// The row operand `A[k]` is shared across every column, producing the
/// fan-out hotspot the paper highlights (`mmul` is the one kernel where
/// even Pan-SPR\* misses MII).
pub(super) fn matrix_multiply(scale: KernelScale) -> Dfg {
    let depth = scale.dim(3, 3, 2, 2);
    let cols = scale.dim(50, 16, 3, 2);
    let mut b = KernelBuilder::new("matrix_multiply");
    let a_row: Vec<OpId> = (0..depth).map(|k| b.load(format!("a{k}"))).collect();
    for j in 0..cols {
        let products: Vec<OpId> = (0..depth)
            .map(|k| {
                let bkj = b.load(format!("b{k}_{j}"));
                b.mul(a_row[k], bkj, format!("m{k}_{j}"))
            })
            .collect();
        let sum = b.chain_sum(&products, &format!("c{j}"));
        let rounded = b.shift(sum, format!("rnd{j}"));
        if j == 0 {
            b.recurrence(rounded, 4, "blk_state");
        }
        b.store(rounded, format!("out{j}"));
    }
    b.build().expect("mmul generator is structurally acyclic")
}

/// Matrix inversion by the adjugate method: per-entry cofactor expressions,
/// a determinant reduction, one reciprocal whose fan-out is the full `n²`
/// output matrix, and the final scaling multiplies.
pub(super) fn invertmat(scale: KernelScale) -> Dfg {
    let n = scale.dim(6, 3, 2, 2);
    let (cof_muls, cof_adds) = if matches!(scale, KernelScale::Tiny) {
        (2, 1)
    } else {
        (4, 3)
    };
    let mut b = KernelBuilder::new("invertmat");
    let elems: Vec<OpId> = (0..n * n).map(|i| b.load(format!("a{i}"))).collect();

    // cofactor expression per output entry: products of input elements,
    // reduced; element choice walks the matrix deterministically
    let mut cofactors = Vec::with_capacity(n * n);
    for e in 0..n * n {
        let mut terms = Vec::with_capacity(cof_muls);
        for m in 0..cof_muls {
            let x = elems[(e + m + 1) % (n * n)];
            let y = elems[(e * 3 + m * 7 + 2) % (n * n)];
            terms.push(b.mul(x, y, format!("cf{e}_{m}")));
        }
        // cof_adds adds combine the products (chain)
        let mut acc = terms[0];
        for (i, &t) in terms.iter().enumerate().skip(1).take(cof_adds) {
            acc = b.add(acc, t, format!("ca{e}_{i}"));
        }
        cofactors.push(acc);
    }

    // determinant: first row of cofactors times first row of elements
    let det_terms: Vec<OpId> = (0..n)
        .map(|j| b.mul(elems[j], cofactors[j], format!("dt{j}")))
        .collect();
    let det = b.reduce(OpKind::Add, &det_terms, "det");
    // reciprocal approximated on the ALU (modelled as a unary op)
    let recip = b.unary(OpKind::Shift, det, "recip");

    for (e, &cof) in cofactors.iter().enumerate() {
        let out = b.mul(recip, cof, format!("inv{e}"));
        if e == 0 {
            b.recurrence(out, 5, "cond_state");
        }
        b.store(out, format!("o{e}"));
    }
    b.build()
        .expect("invertmat generator is structurally acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelScale;

    #[test]
    fn mmul_shared_row_fanout() {
        let dfg = matrix_multiply(KernelScale::Paper);
        let s = dfg.stats();
        // A-row loads feed all 50 columns
        assert!(s.max_degree >= 45, "max degree {}", s.max_degree);
        assert!((450..=560).contains(&s.nodes), "nodes {}", s.nodes);
    }

    #[test]
    fn invertmat_reciprocal_dominates_fanout() {
        let dfg = invertmat(KernelScale::Paper);
        let s = dfg.stats();
        // recip feeds n² = 36 scaling multiplies (+1 producer)
        assert!(
            (34..=45).contains(&s.max_degree),
            "max degree {}",
            s.max_degree
        );
    }

    #[test]
    fn outputs_equal_matrix_entries() {
        let dfg = invertmat(KernelScale::Scaled);
        let stores = dfg
            .op_ids()
            .filter(|&v| dfg.op(v).kind == OpKind::Store)
            .count();
        assert_eq!(stores, 10); // 3×3 entries + recurrence state
    }

    #[test]
    fn mmul_tiny_is_small() {
        assert!(matrix_multiply(KernelScale::Tiny).num_ops() <= 30);
    }
}
