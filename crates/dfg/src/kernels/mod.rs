//! Structural generators for the twelve loop kernels of the paper's
//! evaluation (Table 1a).
//!
//! The original toolchain extracts these DFGs from annotated MediaBench /
//! Embench C sources with an LLVM pass, after unrolling each loop to fill a
//! 16×16 CGRA (average 432 nodes). We rebuild the same dataflow *structure*
//! generatively — shared coefficient broadcasts in `fir`/`matched filter`
//! (the high-fan-out hotspots), butterfly stages in the DCT kernels,
//! iteration chains in `cordic`, dot-product lattices in `mmul` — with an
//! unroll knob per kernel. [`KernelScale::Paper`] approximates the paper's
//! published node counts; [`KernelScale::Scaled`] is roughly a third of the
//! size for fast regression runs; [`KernelScale::Tiny`] fits unit tests.
//!
//! # Examples
//!
//! ```
//! use panorama_dfg::{kernels, KernelId, KernelScale};
//!
//! for id in KernelId::ALL {
//!     let dfg = kernels::generate(id, KernelScale::Tiny);
//!     assert!(dfg.validate().is_ok(), "{id} must be well-formed");
//! }
//! ```

mod algebra;
mod dct;
mod dsp;
mod helpers;
mod misc;

use crate::Dfg;
use std::fmt;

pub(crate) use helpers::KernelBuilder;

/// The twelve benchmark loop kernels of Table 1a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelId {
    /// `edn` (Embench): vector MAC / dot-product mix.
    Edn,
    /// `idctcols` (MediaBench): inverse DCT over block columns.
    IdctCols,
    /// `idctrows` (MediaBench): inverse DCT over block rows.
    IdctRows,
    /// 2-D convolution (3×3 stencil).
    Conv2d,
    /// Matched filter (long dot products against a shared template).
    MatchedFilter,
    /// Matrix multiply (tile of inner products).
    MatrixMultiply,
    /// CORDIC rotation iterations.
    Cordic,
    /// k-means clustering distance + argmin step.
    KMeansClustering,
    /// FIR filter (short taps, deeply unrolled).
    Fir,
    /// JPEG forward DCT.
    JpegFdct,
    /// JPEG fast inverse DCT.
    JpegIdctFst,
    /// Matrix inversion (Gauss–Jordan elimination steps).
    InvertMat,
}

impl KernelId {
    /// All kernels in the paper's table order.
    pub const ALL: [KernelId; 12] = [
        KernelId::Edn,
        KernelId::IdctCols,
        KernelId::IdctRows,
        KernelId::Conv2d,
        KernelId::MatchedFilter,
        KernelId::MatrixMultiply,
        KernelId::Cordic,
        KernelId::KMeansClustering,
        KernelId::Fir,
        KernelId::JpegFdct,
        KernelId::JpegIdctFst,
        KernelId::InvertMat,
    ];

    /// Kernel name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Edn => "edn",
            KernelId::IdctCols => "idctcols",
            KernelId::IdctRows => "idctrows",
            KernelId::Conv2d => "2-D convolution",
            KernelId::MatchedFilter => "matched filter",
            KernelId::MatrixMultiply => "matrix multiply",
            KernelId::Cordic => "cordic",
            KernelId::KMeansClustering => "k-means clust.",
            KernelId::Fir => "fir",
            KernelId::JpegFdct => "jpegfdct",
            KernelId::JpegIdctFst => "jpegidctfst",
            KernelId::InvertMat => "invertmat",
        }
    }

    /// (nodes, edges, max degree) reported in the paper's Table 1a, used by
    /// the experiment harness to print paper-vs-measured columns.
    pub fn paper_stats(self) -> (usize, usize, usize) {
        match self {
            KernelId::Edn => (507, 633, 25),
            KernelId::IdctCols => (403, 580, 23),
            KernelId::IdctRows => (427, 694, 40),
            KernelId::Conv2d => (512, 666, 36),
            KernelId::MatchedFilter => (501, 572, 75),
            KernelId::MatrixMultiply => (503, 609, 53),
            KernelId::Cordic => (294, 491, 14),
            KernelId::KMeansClustering => (461, 545, 42),
            KernelId::Fir => (256, 310, 49),
            KernelId::JpegFdct => (440, 593, 35),
            KernelId::JpegIdctFst => (486, 626, 27),
            KernelId::InvertMat => (389, 610, 37),
        }
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Generation size: paper scale, a scaled-down regression size, or tiny
/// unit-test size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelScale {
    /// Approximates the paper's Table 1a node counts (~430 avg).
    Paper,
    /// Roughly a third of paper size; the default experiment profile.
    #[default]
    Scaled,
    /// A handful of operations, for unit tests.
    Tiny,
    /// Explicit unroll control: kernel dimensions at `permille`/1000 of the
    /// paper size (the paper unrolls each loop "to take advantage of
    /// larger CGRA"; this knob does the same for arbitrary arrays).
    /// `Custom { permille: 1000 }` ≈ `Paper`.
    Custom {
        /// Unroll factor in thousandths of the paper size (1..=4000).
        permille: u16,
    },
}

impl KernelScale {
    /// The three named scales, for exhaustive test iteration.
    pub const ALL: [KernelScale; 3] = [KernelScale::Paper, KernelScale::Scaled, KernelScale::Tiny];

    /// Scales a paper-sized dimension, never below `min`.
    pub(crate) fn dim(self, paper: usize, scaled: usize, tiny: usize, min: usize) -> usize {
        match self {
            KernelScale::Paper => paper,
            KernelScale::Scaled => scaled,
            KernelScale::Tiny => tiny,
            KernelScale::Custom { permille } => ((paper * permille as usize) / 1000).max(min),
        }
    }
}

impl fmt::Display for KernelScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelScale::Paper => f.write_str("paper"),
            KernelScale::Scaled => f.write_str("scaled"),
            KernelScale::Tiny => f.write_str("tiny"),
            KernelScale::Custom { permille } => write!(f, "custom({permille}‰)"),
        }
    }
}

/// Generates the DFG for `id` at `scale`.
///
/// The output is deterministic: the same `(id, scale)` pair always yields a
/// structurally identical DFG.
pub fn generate(id: KernelId, scale: KernelScale) -> Dfg {
    match id {
        KernelId::Fir => dsp::fir(scale),
        KernelId::MatchedFilter => dsp::matched_filter(scale),
        KernelId::Conv2d => dsp::conv2d(scale),
        KernelId::Edn => dsp::edn(scale),
        KernelId::IdctCols => dct::idctcols(scale),
        KernelId::IdctRows => dct::idctrows(scale),
        KernelId::JpegFdct => dct::jpegfdct(scale),
        KernelId::JpegIdctFst => dct::jpegidctfst(scale),
        KernelId::MatrixMultiply => algebra::matrix_multiply(scale),
        KernelId::InvertMat => algebra::invertmat(scale),
        KernelId::Cordic => misc::cordic(scale),
        KernelId::KMeansClustering => misc::kmeans(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_valid_at_all_scales() {
        for id in KernelId::ALL {
            for scale in KernelScale::ALL {
                let dfg = generate(id, scale);
                dfg.validate()
                    .unwrap_or_else(|e| panic!("{id} @ {scale}: {e}"));
                assert!(dfg.num_ops() > 0);
                assert!(dfg.num_mem_ops() > 0, "{id} should touch memory");
            }
        }
    }

    #[test]
    fn paper_scale_node_counts_are_close() {
        for id in KernelId::ALL {
            let dfg = generate(id, KernelScale::Paper);
            let (paper_nodes, _, _) = id.paper_stats();
            let nodes = dfg.num_ops() as f64;
            let ratio = nodes / paper_nodes as f64;
            assert!(
                (0.7..1.3).contains(&ratio),
                "{id}: generated {nodes} nodes vs paper {paper_nodes}"
            );
        }
    }

    #[test]
    fn scales_are_ordered() {
        for id in KernelId::ALL {
            let tiny = generate(id, KernelScale::Tiny).num_ops();
            let scaled = generate(id, KernelScale::Scaled).num_ops();
            let paper = generate(id, KernelScale::Paper).num_ops();
            assert!(tiny < scaled, "{id}: tiny {tiny} !< scaled {scaled}");
            assert!(scaled < paper, "{id}: scaled {scaled} !< paper {paper}");
            assert!(tiny <= 72, "{id}: tiny too big ({tiny})");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for id in [KernelId::Fir, KernelId::Cordic, KernelId::Edn] {
            let a = generate(id, KernelScale::Scaled);
            let b = generate(id, KernelScale::Scaled);
            assert_eq!(a.to_dot(), b.to_dot());
        }
    }

    #[test]
    fn high_fanout_kernels_have_high_max_degree() {
        // the paper singles out mmul / fir / matched filter for fan-out
        let fir = generate(KernelId::Fir, KernelScale::Paper).stats();
        let cordic = generate(KernelId::Cordic, KernelScale::Paper).stats();
        assert!(
            fir.max_degree > cordic.max_degree,
            "fir {} vs cordic {}",
            fir.max_degree,
            cordic.max_degree
        );
    }

    #[test]
    fn names_match_paper_table() {
        assert_eq!(KernelId::Fir.name(), "fir");
        assert_eq!(KernelId::KMeansClustering.to_string(), "k-means clust.");
        assert_eq!(KernelId::ALL.len(), 12);
    }
}

#[cfg(test)]
mod custom_scale_tests {
    use super::*;

    #[test]
    fn custom_permille_interpolates_sizes() {
        for id in KernelId::ALL {
            let paper = generate(id, KernelScale::Paper).num_ops();
            let full = generate(id, KernelScale::Custom { permille: 1000 }).num_ops();
            let half = generate(id, KernelScale::Custom { permille: 500 }).num_ops();
            let double = generate(id, KernelScale::Custom { permille: 2000 }).num_ops();
            // full ≈ paper (same dimensions)
            assert_eq!(full, paper, "{id}");
            assert!(half < paper, "{id}: half {half} !< paper {paper}");
            assert!(double > paper, "{id}: double {double} !> paper {paper}");
        }
    }

    #[test]
    fn custom_scale_dfgs_validate() {
        for id in KernelId::ALL {
            for permille in [100, 700, 1500] {
                let dfg = generate(id, KernelScale::Custom { permille });
                dfg.validate()
                    .unwrap_or_else(|e| panic!("{id}@{permille}: {e}"));
            }
        }
    }

    #[test]
    fn display_shows_permille() {
        assert_eq!(
            KernelScale::Custom { permille: 250 }.to_string(),
            "custom(250‰)"
        );
    }
}
