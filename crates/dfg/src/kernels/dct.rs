//! DCT-family kernels: `idctcols`, `idctrows`, `jpegfdct`, `jpegidctfst`.
//!
//! All four process 8-lane rows/columns of a block through butterfly
//! add/sub rounds interleaved with constant multiplies, then round with a
//! shift and store. They differ in round count, multiply density and how
//! widely the fixed-point constants are shared across rows — which is what
//! moves the max-degree column of Table 1a (23 for `idctcols` up to 40 for
//! `idctrows`).

use super::{KernelBuilder, KernelScale};
use crate::{Dfg, OpId};

const LANES: usize = 8;

/// Parameters of one DCT-style kernel.
struct DctShape {
    name: &'static str,
    /// Rows (or columns) of the block processed by the unrolled loop body.
    rows: usize,
    /// Butterfly add/sub rounds per row (each round is 8 ops over 8 lanes).
    rounds: usize,
    /// Constant multiplies per row in total.
    muls_per_row: usize,
    /// How many of those consume the *shared* fixed-point constant (the
    /// rest fold their constant into the instruction).
    shared_muls_per_row: usize,
}

fn dct_kernel(shape: &DctShape) -> Dfg {
    let mut b = KernelBuilder::new(shape.name);
    let shared_const = b.constant("c_shared");
    for r in 0..shape.rows {
        let mut lanes: Vec<OpId> = (0..LANES).map(|l| b.load(format!("in{r}_{l}"))).collect();

        for round in 0..shape.rounds {
            let mut next = vec![lanes[0]; LANES];
            // pair lanes with a round-dependent stride, like the even/odd
            // decomposition of a real DCT network
            let stride = 1 << (round % 3); // 1, 2, 4
            let mut paired = [false; LANES];
            for l in 0..LANES {
                if paired[l] {
                    continue;
                }
                let partner = (l + stride) % LANES;
                paired[l] = true;
                paired[partner] = true;
                next[l] = b.add(lanes[l], lanes[partner], format!("bf{r}_{round}_{l}a"));
                next[partner] = b.sub(lanes[l], lanes[partner], format!("bf{r}_{round}_{l}s"));
            }
            lanes = next;
        }

        for m in 0..shape.muls_per_row {
            let lane = m % LANES;
            lanes[lane] = if m < shape.shared_muls_per_row {
                b.mul(shared_const, lanes[lane], format!("cm{r}_{m}"))
            } else {
                b.mul_imm(lanes[lane], format!("im{r}_{m}"))
            };
        }

        for (l, &v) in lanes.iter().enumerate() {
            let rounded = b.shift(v, format!("rnd{r}_{l}"));
            if r == 0 && l == 0 {
                // running range/clamp state carried across block rows
                b.recurrence(rounded, 4, "range_state");
            }
            b.store(rounded, format!("out{r}_{l}"));
        }
    }
    b.build().expect("dct generators are structurally acyclic")
}

fn rows_for(scale: KernelScale) -> usize {
    scale.dim(8, 3, 1, 1)
}

/// Inverse DCT over block columns: 3 butterfly rounds, sparse multiplies,
/// moderately shared constants.
pub(super) fn idctcols(scale: KernelScale) -> Dfg {
    dct_kernel(&DctShape {
        name: "idctcols",
        rows: rows_for(scale),
        rounds: 3,
        muls_per_row: 3,
        shared_muls_per_row: 3,
    })
}

/// Inverse DCT over block rows: denser multiplies, all against one shared
/// constant — the widest constant broadcast in the DCT family.
pub(super) fn idctrows(scale: KernelScale) -> Dfg {
    dct_kernel(&DctShape {
        name: "idctrows",
        rows: rows_for(scale),
        rounds: 3,
        muls_per_row: 5,
        shared_muls_per_row: 5,
    })
}

/// JPEG forward DCT: 3 rounds, 6 multiplies per row of which 4 share the
/// scale constant.
pub(super) fn jpegfdct(scale: KernelScale) -> Dfg {
    dct_kernel(&DctShape {
        name: "jpegfdct",
        rows: rows_for(scale),
        rounds: 3,
        muls_per_row: 6,
        shared_muls_per_row: 4,
    })
}

/// JPEG fast inverse DCT: an extra butterfly round (the "fast" even/odd
/// recombination), fewer shared multiplies.
pub(super) fn jpegidctfst(scale: KernelScale) -> Dfg {
    dct_kernel(&DctShape {
        name: "jpegidctfst",
        rows: rows_for(scale),
        rounds: 4,
        muls_per_row: 4,
        shared_muls_per_row: 3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelScale, OpKind};

    #[test]
    fn row_counts_scale_linearly() {
        let one = idctcols(KernelScale::Tiny).num_ops();
        let eight = idctcols(KernelScale::Paper).num_ops();
        // 8 rows ≈ 8 × (1 row) minus the shared constant overlap
        assert!(eight > 7 * (one - 1), "{eight} vs {one}");
    }

    #[test]
    fn idctrows_has_wider_broadcast_than_idctcols() {
        let rows = idctrows(KernelScale::Paper).stats();
        let cols = idctcols(KernelScale::Paper).stats();
        assert!(rows.max_degree > cols.max_degree);
    }

    #[test]
    fn butterfly_rounds_add_ops() {
        let fst = jpegidctfst(KernelScale::Paper).num_ops();
        let fdct = jpegfdct(KernelScale::Paper).num_ops();
        // 4 rounds at 4 muls ≈ more ops than 3 rounds at 6 muls
        assert!(fst > fdct);
    }

    #[test]
    fn every_lane_is_stored() {
        let dfg = jpegfdct(KernelScale::Tiny);
        let stores = dfg
            .op_ids()
            .filter(|&v| dfg.op(v).kind == OpKind::Store)
            .count();
        assert_eq!(stores, LANES + 1); // 8 lanes + recurrence state
    }
}
