//! DSP kernels: FIR, matched filter, 2-D convolution and the Embench `edn`
//! vector-MAC mix.

use super::{KernelBuilder, KernelScale};
use crate::{Dfg, OpId};

/// Unrolled FIR filter: `out[j] = Σ_k c[k] · x[j+k]`, short tap count but
/// deep unrolling, so the coefficient constants are the fan-out hotspot the
/// paper's Table 1a reports (max degree 49 at 256 nodes).
pub(super) fn fir(scale: KernelScale) -> Dfg {
    let taps = 2;
    let unroll = scale.dim(42, 14, 4, 2);
    let mut b = KernelBuilder::new("fir");
    let coeffs: Vec<OpId> = (0..taps).map(|k| b.constant(format!("c{k}"))).collect();
    let samples: Vec<OpId> = (0..unroll + taps - 1)
        .map(|i| b.load(format!("x{i}")))
        .collect();
    for j in 0..unroll {
        let products: Vec<OpId> = (0..taps)
            .map(|k| b.mul(coeffs[k], samples[j + k], format!("m{j}_{k}")))
            .collect();
        let sum = b.chain_sum(&products, &format!("s{j}"));
        let rounded = b.shift(sum, format!("rnd{j}"));
        if j == 0 {
            b.recurrence(rounded, 3, "dc");
        }
        b.store(rounded, format!("y{j}"));
    }
    b.build().expect("fir generator is structurally acyclic")
}

/// Matched filter: long dot products of input windows against one shared
/// template — the highest-fan-out kernel in the suite (max degree 75).
pub(super) fn matched_filter(scale: KernelScale) -> Dfg {
    let template = 3;
    let windows = scale.dim(62, 22, 4, 2);
    let mut b = KernelBuilder::new("matched_filter");
    let coeffs: Vec<OpId> = (0..template).map(|k| b.constant(format!("h{k}"))).collect();
    let samples: Vec<OpId> = (0..windows + template - 1)
        .map(|i| b.load(format!("x{i}")))
        .collect();
    for j in 0..windows {
        let products: Vec<OpId> = (0..template)
            .map(|k| b.mul(coeffs[k], samples[j + k], format!("m{j}_{k}")))
            .collect();
        let sum = b.chain_sum(&products, &format!("s{j}"));
        let rounded = b.shift(sum, format!("rnd{j}"));
        if j == 0 {
            b.recurrence(rounded, 3, "peak");
        }
        b.store(rounded, format!("y{j}"));
    }
    b.build()
        .expect("matched filter generator is structurally acyclic")
}

/// 3×3 2-D convolution over a `w × h` tile of output pixels with shared
/// (overlapping) image loads and shared stencil constants.
pub(super) fn conv2d(scale: KernelScale) -> Dfg {
    let w = scale.dim(6, 3, 1, 1);
    let h = scale.dim(4, 3, 1, 1);
    let mut b = KernelBuilder::new("conv2d");
    let stencil: Vec<OpId> = (0..9).map(|k| b.constant(format!("k{k}"))).collect();
    // (w+2) × (h+2) image tile, shared across overlapping windows
    let mut image = Vec::with_capacity((w + 2) * (h + 2));
    for r in 0..h + 2 {
        for c in 0..w + 2 {
            image.push(b.load(format!("img{r}_{c}")));
        }
    }
    let img = |r: usize, c: usize| image[r * (w + 2) + c];
    for r in 0..h {
        for c in 0..w {
            let mut products = Vec::with_capacity(9);
            for dr in 0..3 {
                for dc in 0..3 {
                    products.push(b.mul(
                        stencil[dr * 3 + dc],
                        img(r + dr, c + dc),
                        format!("m{r}_{c}_{dr}{dc}"),
                    ));
                }
            }
            let sum = b.reduce(crate::OpKind::Add, &products, &format!("p{r}_{c}"));
            let rounded = b.shift(sum, format!("rnd{r}_{c}"));
            if r == 0 && c == 0 {
                b.recurrence(rounded, 3, "edge_state");
            }
            b.store(rounded, format!("out{r}_{c}"));
        }
    }
    b.build().expect("conv2d generator is structurally acyclic")
}

/// Embench `edn`: a mix of independent dot products (shared second operand
/// array) and a `vec_mpy`-style scaled multiply-accumulate loop with a
/// loop-carried accumulator.
pub(super) fn edn(scale: KernelScale) -> Dfg {
    let dots = scale.dim(10, 4, 1, 1);
    let dot_len = scale.dim(12, 8, 4, 2);
    let vec_len = scale.dim(28, 12, 4, 2);
    let mut b = KernelBuilder::new("edn");

    // dot products: a[d] streams are private, b[] stream is shared
    let shared: Vec<OpId> = (0..dot_len).map(|i| b.load(format!("b{i}"))).collect();
    for d in 0..dots {
        let products: Vec<OpId> = (0..dot_len)
            .map(|i| {
                let a = b.load(format!("a{d}_{i}"));
                b.mul(a, shared[i], format!("dm{d}_{i}"))
            })
            .collect();
        let sum = b.reduce(crate::OpKind::Add, &products, &format!("dot{d}"));
        let rounded = b.shift(sum, format!("dr{d}"));
        b.store(rounded, format!("dout{d}"));
    }

    // vec_mpy: y[i] += (scale * x[i]) >> s, with a loop-carried accumulator
    let gain = b.constant("gain");
    let mut acc_nodes = Vec::new();
    let mut acc: Option<OpId> = None;
    for i in 0..vec_len {
        let x = b.load(format!("x{i}"));
        let scaled = b.mul(gain, x, format!("vm{i}"));
        let shifted = b.shift(scaled, format!("vs{i}"));
        let sum = match acc {
            None => shifted,
            Some(prev) => b.add(prev, shifted, format!("va{i}")),
        };
        acc = Some(sum);
        acc_nodes.push(sum);
    }
    let final_acc = acc.expect("vec_len >= 1");
    b.store(final_acc, "vout");
    let _ = acc_nodes;
    // loop-carried scalar state (running MAC total)
    b.recurrence(final_acc, 4, "mac_state");

    b.build().expect("edn generator is structurally acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelScale, OpKind};

    #[test]
    fn fir_paper_scale_stats() {
        let dfg = fir(KernelScale::Paper);
        let s = dfg.stats();
        assert!((230..=280).contains(&s.nodes), "nodes {}", s.nodes);
        // coefficient fan-out dominates
        assert!(s.max_degree >= 40, "max degree {}", s.max_degree);
    }

    #[test]
    fn matched_filter_has_highest_fanout() {
        let mf = matched_filter(KernelScale::Paper).stats();
        let cv = conv2d(KernelScale::Paper).stats();
        assert!(mf.max_degree > cv.max_degree);
        assert!(mf.max_degree >= 55);
    }

    #[test]
    fn conv2d_shares_image_loads() {
        let dfg = conv2d(KernelScale::Scaled);
        // interior image loads feed up to 9 windows
        let max_load_deg = dfg
            .op_ids()
            .filter(|&v| dfg.op(v).kind == OpKind::Load)
            .map(|v| dfg.graph().degree(v))
            .max()
            .unwrap();
        assert!(max_load_deg >= 4, "overlap sharing missing: {max_load_deg}");
    }

    #[test]
    fn edn_has_back_edge() {
        let dfg = edn(KernelScale::Scaled);
        assert_eq!(dfg.num_back_edges(), 1);
        assert!(dfg.validate().is_ok());
    }
}
