//! Iterative kernels: CORDIC rotations and the k-means assignment step.

use super::{KernelBuilder, KernelScale};
use crate::{Dfg, OpId, OpKind};

/// CORDIC vector rotation, unrolled over independent samples. Each sample
/// threads `x`, `y`, `z` through `iters` shift-add stages; the arctangent
/// constants are shared across samples. Long dependence chains, low
/// fan-out — the structural opposite of `fir`/`mmul`.
pub(super) fn cordic(scale: KernelScale) -> Dfg {
    let samples = scale.dim(12, 4, 1, 1);
    let iters = scale.dim(4, 4, 3, 2);
    let mut b = KernelBuilder::new("cordic");
    let atan: Vec<OpId> = (0..iters).map(|i| b.constant(format!("atan{i}"))).collect();
    for s in 0..samples {
        let mut x = b.load(format!("x{s}"));
        let mut y = b.load(format!("y{s}"));
        let mut z = b.load(format!("z{s}"));
        for (i, &atan_i) in atan.iter().enumerate() {
            let xs = b.shift(x, format!("xs{s}_{i}"));
            let ys = b.shift(y, format!("ys{s}_{i}"));
            let xn = b.sub(x, ys, format!("xn{s}_{i}"));
            let yn = b.add(y, xs, format!("yn{s}_{i}"));
            let zn = b.sub(z, atan_i, format!("zn{s}_{i}"));
            x = xn;
            y = yn;
            z = zn;
        }
        if s == 0 {
            b.recurrence(z, 5, "gain_state");
        }
        b.store(x, format!("xo{s}"));
        b.store(y, format!("yo{s}"));
        b.store(z, format!("zo{s}"));
    }
    b.build().expect("cordic generator is structurally acyclic")
}

/// k-means assignment step: squared distances of each point to every
/// centroid, an argmin over centroids, label store, plus a loop-carried
/// per-cluster accumulator (the centroid-update partial sum).
pub(super) fn kmeans(scale: KernelScale) -> Dfg {
    let points = scale.dim(30, 10, 2, 2);
    let (centroids, dims) = (2, 2);
    let mut b = KernelBuilder::new("kmeans");
    // centroid coordinates shared by every point: the fan-out hotspot
    let mut cent = Vec::with_capacity(centroids * dims);
    for c in 0..centroids {
        for d in 0..dims {
            cent.push(b.load(format!("c{c}_{d}")));
        }
    }
    let mut acc_first: Option<OpId> = None;
    let mut acc_last: Option<OpId> = None;
    for p in 0..points {
        let coords: Vec<OpId> = (0..dims).map(|d| b.load(format!("p{p}_{d}"))).collect();
        let mut dists = Vec::with_capacity(centroids);
        for c in 0..centroids {
            let sq: Vec<OpId> = (0..dims)
                .map(|d| {
                    let diff = b.sub(coords[d], cent[c * dims + d], format!("df{p}_{c}_{d}"));
                    b.mul(diff, diff, format!("sq{p}_{c}_{d}"))
                })
                .collect();
            dists.push(b.reduce(OpKind::Add, &sq, &format!("ds{p}_{c}")));
        }
        // argmin over centroids: cmp + select chain
        let mut best = dists[0];
        for (c, &d) in dists.iter().enumerate().skip(1) {
            let cmp = b.binary(OpKind::Cmp, best, d, format!("cm{p}_{c}"));
            let sel = b.binary(OpKind::Select, cmp, d, format!("sl{p}_{c}"));
            best = sel;
        }
        b.store(best, format!("lbl{p}"));
        // running partial sum for the centroid update (loop-carried)
        let acc = match acc_last {
            None => {
                let a = b.unary(OpKind::Add, coords[0], format!("acc{p}"));
                acc_first = Some(a);
                a
            }
            Some(prev) => b.add(prev, coords[0], format!("acc{p}")),
        };
        acc_last = Some(acc);
    }
    let _ = acc_first;
    if let Some(last) = acc_last {
        b.store(last, "accout");
        // loop-carried per-cluster running sum
        b.recurrence(last, 4, "centroid_state");
    }
    b.build().expect("kmeans generator is structurally acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelScale;

    #[test]
    fn cordic_has_low_fanout_long_chains() {
        let dfg = cordic(KernelScale::Paper);
        let s = dfg.stats();
        assert!(s.max_degree <= 20, "max degree {}", s.max_degree);
        // chain depth: each iteration adds ≥ 2 levels
        let levels = dfg
            .graph()
            .longest_path_levels(|e| !e.weight.is_back())
            .unwrap();
        assert!(*levels.iter().max().unwrap() >= 6);
    }

    #[test]
    fn kmeans_has_centroid_broadcast() {
        let dfg = kmeans(KernelScale::Paper);
        let s = dfg.stats();
        assert!(s.max_degree >= 25, "max degree {}", s.max_degree);
        assert_eq!(s.back_edges, 1);
    }

    #[test]
    fn cordic_stores_three_outputs_per_sample() {
        let dfg = cordic(KernelScale::Scaled);
        let stores = dfg
            .op_ids()
            .filter(|&v| dfg.op(v).kind == OpKind::Store)
            .count();
        assert_eq!(stores, 13); // 4 samples × 3 outputs + recurrence state
    }

    #[test]
    fn kmeans_labels_every_point() {
        let dfg = kmeans(KernelScale::Scaled);
        let stores = dfg
            .op_ids()
            .filter(|&v| dfg.op(v).kind == OpKind::Store)
            .count();
        assert_eq!(stores, 12); // 10 labels + accumulator + recurrence state
    }
}
