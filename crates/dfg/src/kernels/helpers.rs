//! Shared construction helpers for the kernel generators.

use crate::{Dfg, DfgBuilder, DfgError, OpId, OpKind};

/// Thin wrapper over [`DfgBuilder`] with the idioms the kernel generators
/// share: binary ops, reduction trees, MAC chains and rounding shifts.
#[derive(Debug)]
pub(crate) struct KernelBuilder {
    inner: DfgBuilder,
}

impl KernelBuilder {
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            inner: DfgBuilder::new(name),
        }
    }

    pub fn load(&mut self, name: impl Into<String>) -> OpId {
        self.inner.op(OpKind::Load, name)
    }

    pub fn store(&mut self, value: OpId, name: impl Into<String>) -> OpId {
        let s = self.inner.op(OpKind::Store, name);
        self.inner.data(value, s);
        s
    }

    pub fn constant(&mut self, name: impl Into<String>) -> OpId {
        self.inner.op(OpKind::Const, name)
    }

    pub fn unary(&mut self, kind: OpKind, a: OpId, name: impl Into<String>) -> OpId {
        let v = self.inner.op(kind, name);
        self.inner.data(a, v);
        v
    }

    pub fn binary(&mut self, kind: OpKind, a: OpId, b: OpId, name: impl Into<String>) -> OpId {
        let v = self.inner.op(kind, name);
        self.inner.data(a, v);
        self.inner.data(b, v);
        v
    }

    pub fn add(&mut self, a: OpId, b: OpId, name: impl Into<String>) -> OpId {
        self.binary(OpKind::Add, a, b, name)
    }

    pub fn sub(&mut self, a: OpId, b: OpId, name: impl Into<String>) -> OpId {
        self.binary(OpKind::Sub, a, b, name)
    }

    pub fn mul(&mut self, a: OpId, b: OpId, name: impl Into<String>) -> OpId {
        self.binary(OpKind::Mul, a, b, name)
    }

    /// Multiply by a compile-time coefficient folded into the instruction
    /// (single-input multiply, as LLVM emits for constant operands).
    pub fn mul_imm(&mut self, a: OpId, name: impl Into<String>) -> OpId {
        self.unary(OpKind::Mul, a, name)
    }

    /// Arithmetic shift for fixed-point rounding (single input).
    pub fn shift(&mut self, a: OpId, name: impl Into<String>) -> OpId {
        self.unary(OpKind::Shift, a, name)
    }

    /// Adds a loop-carried dependency (accumulator-style).
    pub fn back(&mut self, src: OpId, dst: OpId, distance: u32) {
        self.inner.back(src, dst, distance);
    }

    /// Balanced binary reduction of `values` with `kind`; returns the root.
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty.
    pub fn reduce(&mut self, kind: OpKind, values: &[OpId], name: &str) -> OpId {
        assert!(!values.is_empty(), "cannot reduce zero values");
        let mut layer: Vec<OpId> = values.to_vec();
        let mut level = 0;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.chunks(2);
            for (i, pair) in it.by_ref().enumerate() {
                if pair.len() == 2 {
                    next.push(self.binary(kind, pair[0], pair[1], format!("{name}_r{level}_{i}")));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
            level += 1;
        }
        layer[0]
    }

    /// Sequential MAC chain: `acc := (((v0 + v1) + v2) + ...)`.
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty.
    pub fn chain_sum(&mut self, values: &[OpId], name: &str) -> OpId {
        assert!(!values.is_empty(), "cannot sum zero values");
        let mut acc = values[0];
        for (i, &v) in values.iter().enumerate().skip(1) {
            acc = self.add(acc, v, format!("{name}_c{i}"));
        }
        acc
    }

    /// Threads a loop-carried state-update chain through the kernel: `len`
    /// single-cycle ops in a distance-1 cycle, seeded by `tie_in` and
    /// ending in a store. This models the accumulators / pointer updates
    /// every streaming loop body carries and sets RecMII = `len`.
    ///
    /// # Panics
    ///
    /// Panics when `len == 0`.
    pub fn recurrence(&mut self, tie_in: OpId, len: usize, name: &str) {
        assert!(len > 0, "recurrence chain needs at least one op");
        let first = self.binary(OpKind::Add, tie_in, tie_in, format!("{name}_s0"));
        let mut prev = first;
        for i in 1..len {
            let kind = if i % 2 == 0 {
                OpKind::Add
            } else {
                OpKind::Shift
            };
            prev = self.unary(kind, prev, format!("{name}_s{i}"));
        }
        self.back(prev, first, 1);
        self.store(prev, format!("{name}_out"));
    }

    pub fn build(self) -> Result<Dfg, DfgError> {
        self.inner.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_tree_shape() {
        let mut b = KernelBuilder::new("t");
        let vals: Vec<_> = (0..5).map(|i| b.load(format!("v{i}"))).collect();
        let root = b.reduce(OpKind::Add, &vals, "sum");
        let s = b.store(root, "out");
        let _ = s;
        let dfg = b.build().unwrap();
        // 5 loads + 4 adds + 1 store
        assert_eq!(dfg.num_ops(), 10);
        // 8 add inputs + 1 store input
        assert_eq!(dfg.num_deps(), 9);
    }

    #[test]
    fn chain_sum_is_linear() {
        let mut b = KernelBuilder::new("t");
        let vals: Vec<_> = (0..4).map(|i| b.load(format!("v{i}"))).collect();
        let root = b.chain_sum(&vals, "acc");
        b.store(root, "out");
        let dfg = b.build().unwrap();
        // 4 loads + 3 adds + 1 store
        assert_eq!(dfg.num_ops(), 8);
    }

    #[test]
    fn single_value_reduce_is_identity() {
        let mut b = KernelBuilder::new("t");
        let v = b.load("v");
        let root = b.reduce(OpKind::Add, &[v], "sum");
        assert_eq!(root, v);
    }
}
