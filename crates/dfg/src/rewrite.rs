//! Semantics-preserving DFG rewriting: the mechanism underneath the
//! `panorama-analyze` optimization passes.
//!
//! A rewrite assigns every operation of the source graph exactly one
//! [`OpRewrite`] action and rebuilds the graph in a single deterministic
//! pass. The *policy* (which ops to fold, merge or drop) lives in the
//! analysis crate; this module only guarantees the mechanics are sound:
//!
//! * surviving ops keep their payload (kind, name, immediate) and their
//!   relative order, so renumbering is dense and reproducible;
//! * edges are remapped through replacement chains with **multiplicity
//!   preserved** — the reference interpreter folds operand values with
//!   multiplicity, so deduplicating `a → c, a → c` would change semantics;
//! * an edge from a removed op into a surviving one is refused rather
//!   than silently dropped (it means the liveness analysis was wrong).

use crate::{Dep, Dfg, DfgBuilder, DfgError, Op, OpId};
use std::error::Error;
use std::fmt;

/// Per-operation rewrite action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpRewrite {
    /// Keep the op and its incoming edges unchanged.
    Keep,
    /// Drop the op and every edge touching it (dead-code elimination).
    /// Only sound when no surviving op consumes it.
    Remove,
    /// Drop the op and redirect its consumers to another (equivalent) op,
    /// identified by its id in the *source* graph. Chains are followed.
    ReplaceBy(OpId),
    /// Replace the op by a `Const` with this immediate value, dropping
    /// its incoming edges (constant folding). Keeps the op's name.
    FoldConst(u64),
}

/// Error from [`apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// `actions` is not exactly one action per op of the source graph.
    WrongArity {
        /// Number of ops in the source graph.
        ops: usize,
        /// Number of actions supplied.
        actions: usize,
    },
    /// A `ReplaceBy` chain loops or ends at a removed op.
    BadReplacement {
        /// The op whose replacement cannot be resolved.
        op: OpId,
    },
    /// A surviving op consumes a removed op: the liveness set was wrong.
    DanglingUse {
        /// The removed producer.
        removed: OpId,
        /// The surviving consumer.
        user: OpId,
    },
    /// Every op was rewritten away; an empty DFG is not representable.
    Empty,
    /// The rebuilt graph failed [`Dfg::validate`].
    Invalid(DfgError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::WrongArity { ops, actions } => {
                write!(f, "{actions} rewrite action(s) for {ops} op(s)")
            }
            RewriteError::BadReplacement { op } => {
                write!(
                    f,
                    "replacement chain for {op} loops or ends at a removed op"
                )
            }
            RewriteError::DanglingUse { removed, user } => {
                write!(f, "removed op {removed} still feeds surviving op {user}")
            }
            RewriteError::Empty => write!(f, "rewrite removed every op"),
            RewriteError::Invalid(e) => write!(f, "rewritten DFG is invalid: {e}"),
        }
    }
}

impl Error for RewriteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RewriteError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Resolves `ReplaceBy` chains to a materialised op, detecting loops.
fn resolve(actions: &[OpRewrite], start: OpId) -> Result<OpId, RewriteError> {
    let mut cur = start;
    for _ in 0..=actions.len() {
        match actions[cur.index()] {
            OpRewrite::Keep | OpRewrite::FoldConst(_) => return Ok(cur),
            OpRewrite::ReplaceBy(next) => cur = next,
            OpRewrite::Remove => return Err(RewriteError::BadReplacement { op: start }),
        }
    }
    Err(RewriteError::BadReplacement { op: start })
}

/// Applies one rewrite action per op and rebuilds the graph.
///
/// # Errors
///
/// See [`RewriteError`]. On success the result passes [`Dfg::validate`].
pub fn apply(dfg: &Dfg, actions: &[OpRewrite]) -> Result<Dfg, RewriteError> {
    apply_with_map(dfg, actions).map(|(out, _)| out)
}

/// Like [`apply`], additionally returning the old-op → new-op mapping:
/// kept and folded ops map to their new id, replaced ops to their
/// (transitive) replacement's new id, removed ops to `None`. The mapping
/// is what lets an equivalence checker compare per-op values across the
/// rewrite without guessing at correspondences.
///
/// # Errors
///
/// See [`RewriteError`].
pub fn apply_with_map(
    dfg: &Dfg,
    actions: &[OpRewrite],
) -> Result<(Dfg, Vec<Option<OpId>>), RewriteError> {
    if actions.len() != dfg.num_ops() {
        return Err(RewriteError::WrongArity {
            ops: dfg.num_ops(),
            actions: actions.len(),
        });
    }
    let mut b = DfgBuilder::new(dfg.name());
    // Old id -> new id for materialised ops (Keep / FoldConst).
    let mut remap: Vec<Option<OpId>> = Vec::with_capacity(dfg.num_ops());
    for v in dfg.op_ids() {
        match actions[v.index()] {
            OpRewrite::Keep => remap.push(Some(b.push_op(dfg.op(v).clone()))),
            OpRewrite::FoldConst(value) => {
                remap.push(Some(b.push_op(Op::constant(dfg.op(v).name.clone(), value))));
            }
            OpRewrite::Remove | OpRewrite::ReplaceBy(_) => remap.push(None),
        }
    }
    for e in dfg.deps() {
        // A folded op needs no operands; edges into removed/replaced ops
        // vanish with them.
        let dst = match actions[e.dst.index()] {
            OpRewrite::Keep => remap[e.dst.index()].expect("kept op is materialised"),
            _ => continue,
        };
        if actions[e.src.index()] == OpRewrite::Remove {
            return Err(RewriteError::DanglingUse {
                removed: e.src,
                user: e.dst,
            });
        }
        let src_old = resolve(actions, e.src)?;
        let src = remap[src_old.index()].expect("resolve targets are materialised");
        match e.weight {
            Dep::Data => b.data(src, dst),
            Dep::Back { distance } => b.back(src, dst, *distance),
        }
    }
    if b.num_ops() == 0 {
        return Err(RewriteError::Empty);
    }
    // Final old → new map: replaced ops land on their chain target's new
    // id; a chain that cannot resolve (only possible when no surviving
    // edge forced resolution above) maps to None like a plain removal.
    let mut map = Vec::with_capacity(dfg.num_ops());
    for v in dfg.op_ids() {
        map.push(match actions[v.index()] {
            OpRewrite::Keep | OpRewrite::FoldConst(_) => remap[v.index()],
            OpRewrite::ReplaceBy(_) => resolve(actions, v).ok().and_then(|t| remap[t.index()]),
            OpRewrite::Remove => None,
        });
    }
    let out = b.build().map_err(RewriteError::Invalid)?;
    Ok((out, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn diamond() -> Dfg {
        // c0, c1 -> add -> st ; ld -> add2 -> st (add2 ≡ add shape-wise)
        let mut b = DfgBuilder::new("d");
        let c0 = b.op(OpKind::Const, "c0");
        let c1 = b.op(OpKind::Const, "c1");
        let a = b.op(OpKind::Add, "a");
        let s = b.op(OpKind::Store, "s");
        b.data(c0, a);
        b.data(c1, a);
        b.data(a, s);
        b.build().unwrap()
    }

    #[test]
    fn keep_everything_is_identity() {
        let dfg = diamond();
        let out = apply(&dfg, &[OpRewrite::Keep; 4]).unwrap();
        assert_eq!(out.num_ops(), 4);
        assert_eq!(out.num_deps(), 3);
        assert_eq!(out.to_text(), dfg.to_text());
    }

    #[test]
    fn fold_drops_incoming_and_orphans_are_removable() {
        let dfg = diamond();
        let actions = vec![
            OpRewrite::Remove,
            OpRewrite::Remove,
            OpRewrite::FoldConst(99),
            OpRewrite::Keep,
        ];
        let out = apply(&dfg, &actions).unwrap();
        assert_eq!(out.num_ops(), 2);
        let folded = out.op_ids().next().unwrap();
        assert_eq!(out.op(folded).kind, OpKind::Const);
        assert_eq!(out.op(folded).imm, Some(99));
        assert_eq!(out.op(folded).name, "a");
        assert_eq!(out.num_deps(), 1);
    }

    #[test]
    fn replace_preserves_edge_multiplicity() {
        // a, b (≡ a) both feed c; merging b into a must leave TWO a→c edges
        let mut bld = DfgBuilder::new("m");
        let a = bld.op(OpKind::Load, "x");
        let b = bld.op(OpKind::Load, "x");
        let c = bld.op(OpKind::Add, "c");
        bld.data(a, c);
        bld.data(b, c);
        let dfg = bld.build().unwrap();
        let actions = vec![OpRewrite::Keep, OpRewrite::ReplaceBy(a), OpRewrite::Keep];
        let out = apply(&dfg, &actions).unwrap();
        assert_eq!(out.num_ops(), 2);
        assert_eq!(out.num_deps(), 2, "duplicate operand edges must survive");
    }

    #[test]
    fn dangling_use_and_bad_chains_are_refused() {
        let dfg = diamond();
        // removing c0 while keeping its consumer is a liveness bug
        let bad = vec![
            OpRewrite::Remove,
            OpRewrite::Keep,
            OpRewrite::Keep,
            OpRewrite::Keep,
        ];
        assert!(matches!(
            apply(&dfg, &bad),
            Err(RewriteError::DanglingUse { .. })
        ));
        // replacement loop
        let c0 = dfg.op_ids().next().unwrap();
        let c1 = dfg.op_ids().nth(1).unwrap();
        let looped = vec![
            OpRewrite::ReplaceBy(c1),
            OpRewrite::ReplaceBy(c0),
            OpRewrite::Keep,
            OpRewrite::Keep,
        ];
        assert!(matches!(
            apply(&dfg, &looped),
            Err(RewriteError::BadReplacement { .. })
        ));
        assert!(matches!(
            apply(&dfg, &[OpRewrite::Keep]),
            Err(RewriteError::WrongArity { .. })
        ));
        assert!(matches!(
            apply(&dfg, &[OpRewrite::Remove; 4]),
            Err(RewriteError::Empty)
        ));
    }

    #[test]
    fn back_edges_remap_with_distance() {
        let mut bld = DfgBuilder::new("b");
        let acc = bld.op(OpKind::Add, "acc");
        let dead = bld.op(OpKind::Const, "dead");
        bld.back(acc, acc, 2);
        let dfg = bld.build().unwrap();
        let out = apply(&dfg, &[OpRewrite::Keep, OpRewrite::Remove]).unwrap();
        assert_eq!(out.num_ops(), 1);
        let e = out.deps().next().unwrap();
        assert_eq!(e.weight.distance(), 2);
        let _ = dead;
    }
}
