//! Dataflow graphs (DFGs) of loop kernels, plus the PANORAMA benchmark
//! suite.
//!
//! A DFG represents one loop body: nodes are operations ([`Op`]), edges are
//! data dependencies ([`Dep`]). Loop-carried dependencies are *back edges*
//! carrying an iteration distance; they determine the recurrence-constrained
//! minimum initiation interval (RecMII) during mapping.
//!
//! The original PANORAMA extracts DFGs from annotated C kernels with an
//! LLVM 10 pass over MediaBench / Embench sources. This crate substitutes
//! deterministic *structural generators* ([`kernels`]) that rebuild the same
//! twelve loop kernels — unrolled FIR, 2-D convolution, DCT butterflies,
//! CORDIC rotations, matrix multiply, and so on — at the paper's published
//! sizes (Table 1a) and at scaled-down sizes for fast regression runs.
//!
//! # Examples
//!
//! ```
//! use panorama_dfg::{kernels, KernelId, KernelScale};
//!
//! let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
//! let stats = dfg.stats();
//! assert!(stats.nodes > 0);
//! assert!(dfg.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfg;
mod op;
mod random;
mod stats;
mod text;

pub mod kernels;
pub mod rewrite;
pub mod shrink;

pub use dfg::{Dep, Dfg, DfgBuilder, DfgError};
pub use kernels::{KernelId, KernelScale};
pub use op::{Op, OpKind};
pub use random::{random_dfg, RandomDfgConfig};
pub use stats::DfgStats;
pub use text::ParseDfgError;

/// Identifier of a DFG operation node (re-exported graph node id).
pub type OpId = panorama_graph::NodeId;
