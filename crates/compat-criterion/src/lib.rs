//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external `criterion` dev-dependency is replaced by this
//! local implementation of the surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of statistical sampling, each benchmark runs its routine a
//! small fixed number of iterations and prints the mean wall-clock time —
//! enough to smoke-test that every bench target builds and runs, and to
//! give a rough timing signal. Use an external harness for publishable
//! numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Benchmark harness handle passed to each registered bench function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `routine` and prints the mean iteration wall-clock time.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
        };
        routine(&mut bencher);
        let mean_ns = bencher.elapsed_ns / bencher.iters.max(1);
        println!("{id}: {} iters, mean {mean_ns} ns/iter", bencher.iters);
        self
    }
}

/// Per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count, timing the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
}

/// Groups benchmark functions under a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the named [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::Criterion;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u64;
        Criterion::default()
            .sample_size(4)
            .bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4);
    }
}
