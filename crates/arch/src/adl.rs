//! A minimal architecture description language (ADL) for the CGRA —
//! the paper's "detailed architecture description of the target
//! architecture" input, as a parseable text file.
//!
//! ```text
//! cgra 16 16
//! clusters 4 4
//! rf 8 reads 4 writes 4
//! intercluster 6
//! mem left_column
//! ```
//!
//! Every directive is optional except `cgra`; omitted ones default to the
//! paper's 16×16 settings. `mem` is `left_column` (one memory column per
//! cluster) or `all`.

use crate::CgraConfig;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced by [`CgraConfig::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseArchError {
    /// A line did not match any directive.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// The mandatory `cgra <rows> <cols>` directive is missing.
    MissingCgra,
    /// The assembled description failed validation.
    Invalid(crate::ArchError),
}

impl fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseArchError::BadLine { line } => {
                write!(f, "unparseable architecture directive at line {line}")
            }
            ParseArchError::MissingCgra => write!(f, "missing `cgra <rows> <cols>` directive"),
            ParseArchError::Invalid(e) => write!(f, "invalid architecture: {e}"),
        }
    }
}

impl Error for ParseArchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseArchError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl CgraConfig {
    /// Serialises the description in ADL form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cgra {} {}", self.rows, self.cols);
        let _ = writeln!(out, "clusters {} {}", self.cluster_rows, self.cluster_cols);
        let _ = writeln!(
            out,
            "rf {} reads {} writes {}",
            self.rf_size, self.rf_read_ports, self.rf_write_ports
        );
        let _ = writeln!(out, "intercluster {}", self.inter_cluster_links);
        let _ = writeln!(
            out,
            "mem {}",
            if self.mem_left_column_only {
                "left_column"
            } else {
                "all"
            }
        );
        if !self.mul_support {
            let _ = writeln!(out, "mul none");
        } else if self.mul_every_n_columns == 1 {
            let _ = writeln!(out, "mul all");
        } else {
            let _ = writeln!(out, "mul columns {}", self.mul_every_n_columns);
        }
        out
    }

    /// Parses an ADL description.
    ///
    /// # Errors
    ///
    /// See [`ParseArchError`].
    pub fn from_text(text: &str) -> Result<CgraConfig, ParseArchError> {
        let mut config = CgraConfig::paper_16x16();
        let mut saw_cgra = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let parse2 = |a: Option<&str>, b: Option<&str>| -> Option<(usize, usize)> {
                Some((a?.parse().ok()?, b?.parse().ok()?))
            };
            match parts.next() {
                Some("cgra") => {
                    let (r, c) = parse2(parts.next(), parts.next())
                        .ok_or(ParseArchError::BadLine { line: line_no })?;
                    config.rows = r;
                    config.cols = c;
                    saw_cgra = true;
                }
                Some("clusters") => {
                    let (r, c) = parse2(parts.next(), parts.next())
                        .ok_or(ParseArchError::BadLine { line: line_no })?;
                    config.cluster_rows = r;
                    config.cluster_cols = c;
                }
                Some("rf") => {
                    // rf <size> [reads <n>] [writes <n>]
                    config.rf_size = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseArchError::BadLine { line: line_no })?;
                    while let Some(word) = parts.next() {
                        let n: usize = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or(ParseArchError::BadLine { line: line_no })?;
                        match word {
                            "reads" => config.rf_read_ports = n,
                            "writes" => config.rf_write_ports = n,
                            _ => return Err(ParseArchError::BadLine { line: line_no }),
                        }
                    }
                }
                Some("intercluster") => {
                    config.inter_cluster_links = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseArchError::BadLine { line: line_no })?;
                }
                Some("mem") => match parts.next() {
                    Some("left_column") => config.mem_left_column_only = true,
                    Some("all") => config.mem_left_column_only = false,
                    _ => return Err(ParseArchError::BadLine { line: line_no }),
                },
                Some("mul") => match parts.next() {
                    Some("all") => {
                        config.mul_every_n_columns = 1;
                        config.mul_support = true;
                    }
                    Some("none") => config.mul_support = false,
                    Some("columns") => {
                        config.mul_every_n_columns = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or(ParseArchError::BadLine { line: line_no })?;
                        config.mul_support = true;
                    }
                    _ => return Err(ParseArchError::BadLine { line: line_no }),
                },
                _ => return Err(ParseArchError::BadLine { line: line_no }),
            }
        }
        if !saw_cgra {
            return Err(ParseArchError::MissingCgra);
        }
        config.validate().map_err(ParseArchError::Invalid)?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_presets() {
        for cfg in [
            CgraConfig::paper_16x16(),
            CgraConfig::paper_9x9(),
            CgraConfig::scaled_8x8(),
            CgraConfig::linear_6x1(),
            CgraConfig {
                mul_support: false,
                ..CgraConfig::small_4x4()
            },
        ] {
            let text = cfg.to_text();
            let back = CgraConfig::from_text(&text).unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn parses_hand_written() {
        let cfg = CgraConfig::from_text(
            "
            # my accelerator
            cgra 8 8
            clusters 2 2
            rf 4 reads 2 writes 2
            intercluster 3
            mem all
        ",
        )
        .unwrap();
        assert_eq!(cfg.rows, 8);
        assert_eq!(cfg.rf_size, 4);
        assert_eq!(cfg.rf_write_ports, 2);
        assert_eq!(cfg.inter_cluster_links, 3);
        assert!(!cfg.mem_left_column_only);
    }

    #[test]
    fn mul_none_disables_multipliers() {
        let cfg = CgraConfig::from_text("cgra 4 4\nclusters 1 1\nmul none").unwrap();
        assert!(!cfg.mul_support);
        let back = CgraConfig::from_text(&cfg.to_text()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn defaults_fill_omitted_directives() {
        let cfg = CgraConfig::from_text("cgra 16 16").unwrap();
        assert_eq!(cfg, CgraConfig::paper_16x16());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            CgraConfig::from_text("clusters 2 2"),
            Err(ParseArchError::MissingCgra)
        );
        assert!(matches!(
            CgraConfig::from_text("cgra x y"),
            Err(ParseArchError::BadLine { line: 1 })
        ));
        assert!(matches!(
            CgraConfig::from_text("cgra 8 8\nmem sometimes"),
            Err(ParseArchError::BadLine { line: 2 })
        ));
        // 3 cluster rows cannot tile 8 rows
        assert!(matches!(
            CgraConfig::from_text("cgra 8 8\nclusters 3 2"),
            Err(ParseArchError::Invalid(_))
        ));
    }
}
