//! Shared MRRG cache: build each `R×C×II` graph once per compile.
//!
//! The mappers rebuild the [`Mrrg`](crate::Mrrg) for every II they attempt,
//! and the portfolio pipeline maps several partition candidates over the
//! same II range concurrently. The graph depends only on the architecture
//! and the II, so a [`Cgra`] carries an [`MrrgCache`] keyed by II: the
//! first requester builds the graph, everyone else (other candidates,
//! annealing restarts, verification, statistics) shares the same
//! [`Arc<Mrrg>`].
//!
//! The cache is *bounded*: a resident server compiles arbitrarily many
//! kernels against one shared `Cgra`, and each kernel's II sweep touches a
//! different II range — an unbounded map would grow for the lifetime of
//! the process. Above [`MrrgCache::capacity`] entries the least recently
//! used graph is evicted; in-flight users keep their `Arc` alive, so
//! eviction only drops the cache's own reference.

use crate::{Cgra, Mrrg};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default [`MrrgCache`] capacity: generous for one compile's II sweep
/// (tens of IIs at most) while keeping a server's resident set bounded.
pub const DEFAULT_MRRG_CACHE_CAPACITY: usize = 32;

/// One cached graph plus its recency stamp.
#[derive(Debug)]
struct Slot {
    mrrg: Arc<Mrrg>,
    last_used: u64,
}

/// Mutex-guarded cache state. `tick` increments on every lookup, so
/// `last_used` values are unique and LRU victims are unambiguous.
#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<usize, Slot>,
    tick: u64,
    capacity: usize,
}

impl Inner {
    /// Evicts least-recently-used entries until the capacity holds;
    /// returns how many graphs were dropped. A capacity of `0` means
    /// unbounded.
    fn evict_to_capacity(&mut self) -> u64 {
        let mut dropped = 0;
        while self.capacity > 0 && self.slots.len() > self.capacity {
            let Some((&victim, _)) = self.slots.iter().min_by_key(|(_, s)| s.last_used) else {
                break;
            };
            self.slots.remove(&victim);
            dropped += 1;
        }
        dropped
    }
}

/// A thread-safe, LRU-bounded II → [`Mrrg`] cache.
///
/// Cloning a [`Cgra`] shares its cache (the architecture is immutable, so
/// every clone produces identical graphs).
///
/// # Examples
///
/// ```
/// use panorama_arch::{Cgra, CgraConfig};
///
/// let cgra = Cgra::new(CgraConfig::small_4x4())?;
/// let a = cgra.mrrg_shared(3);
/// let b = cgra.mrrg_shared(3);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cgra.mrrg_cache().hits(), 1);
/// assert_eq!(cgra.mrrg_cache().misses(), 1);
/// # Ok::<(), panorama_arch::ArchError>(())
/// ```
#[derive(Debug)]
pub struct MrrgCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for MrrgCache {
    fn default() -> Self {
        MrrgCache::with_capacity(DEFAULT_MRRG_CACHE_CAPACITY)
    }
}

impl MrrgCache {
    /// Creates an empty cache holding at most
    /// [`DEFAULT_MRRG_CACHE_CAPACITY`] graphs.
    pub fn new() -> Self {
        MrrgCache::default()
    }

    /// Creates an empty cache holding at most `capacity` graphs; `0`
    /// means unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        MrrgCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
                capacity,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cached graph for `ii`, building (and retaining) it on first
    /// request. Inserting past the capacity evicts the least recently
    /// used graph.
    ///
    /// # Panics
    ///
    /// Panics when `ii == 0` (propagated from [`Cgra::mrrg`]).
    pub fn get_or_build(&self, cgra: &Cgra, ii: usize) -> Arc<Mrrg> {
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.get_mut(&ii) {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&slot.mrrg);
            }
        }
        // Build outside the lock so a slow build of one II never blocks
        // lookups of another. Two threads may race to build the same II;
        // the graph is deterministic, so keeping the first insert is fine.
        let built = Arc::new(cgra.mrrg(ii));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.slots.entry(ii).or_insert(Slot {
            mrrg: built,
            last_used: 0,
        });
        slot.last_used = tick;
        let out = Arc::clone(&slot.mrrg);
        // The entry just touched carries the newest stamp, so with any
        // capacity ≥ 1 it is never its own insert's victim.
        let dropped = inner.evict_to_capacity();
        if dropped > 0 {
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
        }
        out
    }

    /// Changes the capacity, evicting immediately when the cache already
    /// holds more graphs; `0` means unbounded.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        let dropped = inner.evict_to_capacity();
        if dropped > 0 {
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// The maximum number of graphs retained (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Locks the cache state, recovering from poisoning: the map holds
    /// only `Arc`'d complete graphs and monotonic stamps, so a thread that
    /// panicked while holding the lock can never have left a half-built
    /// entry behind. One crashing portfolio candidate must not turn every
    /// later compile on the shared `Cgra` into a cascade of cache panics.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to build a graph.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of graphs evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct IIs currently cached.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the cache holds no graphs yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CgraConfig;

    #[test]
    fn first_lookup_misses_then_hits() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), DEFAULT_MRRG_CACHE_CAPACITY);
        let a = cache.get_or_build(&cgra, 2);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.get_or_build(&cgra, 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_iis_get_distinct_graphs() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::new();
        let a = cache.get_or_build(&cgra, 2);
        let b = cache.get_or_build(&cgra, 3);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.ii(), 2);
        assert_eq!(b.ii(), 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn concurrent_lookups_share_one_graph() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::new();
        let graphs: Vec<Arc<Mrrg>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get_or_build(&cgra, 4)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(graphs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn poisoned_lock_recovers_and_still_serves_hits() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = Arc::new(MrrgCache::new());
        let first = cache.get_or_build(&cgra, 2);
        // Poison the mutex: panic in another thread while holding it, the
        // way a crashing portfolio candidate would mid-lookup.
        let poisoner = Arc::clone(&cache);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("simulated candidate crash while holding the cache lock");
        });
        assert!(handle.join().is_err());
        assert!(cache.inner.is_poisoned());
        // The cache must keep working: hits still hit, inserts still land.
        let again = cache.get_or_build(&cgra, 2);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.hits(), 1);
        let other = cache.get_or_build(&cgra, 3);
        assert_eq!(other.ii(), 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cgra_clones_share_the_cache() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let clone = cgra.clone();
        let a = cgra.mrrg_shared(2);
        let b = clone.mrrg_shared(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cgra.mrrg_cache().misses(), 1);
        assert_eq!(cgra.mrrg_cache().hits(), 1);
    }

    #[test]
    fn lru_eviction_drops_the_least_recently_used_graph() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::with_capacity(2);
        let a = cache.get_or_build(&cgra, 2); // {2}
        cache.get_or_build(&cgra, 3); // {2, 3}
        let a2 = cache.get_or_build(&cgra, 2); // touch 2 → 3 is now LRU
        assert!(Arc::ptr_eq(&a, &a2));
        cache.get_or_build(&cgra, 4); // evicts 3, keeps {2, 4}
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // The recently-used graph survived: same Arc, one more hit.
        let hits = cache.hits();
        let a3 = cache.get_or_build(&cgra, 2);
        assert!(Arc::ptr_eq(&a, &a3));
        assert_eq!(cache.hits(), hits + 1);
        // The evicted II must be rebuilt: a fresh miss (and it evicts 4,
        // the LRU at this point).
        let misses = cache.misses();
        let b2 = cache.get_or_build(&cgra, 3);
        assert_eq!(b2.ii(), 3);
        assert_eq!(cache.misses(), misses + 1);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn set_capacity_shrinks_immediately_and_zero_means_unbounded() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::with_capacity(0);
        for ii in 2..=9 {
            cache.get_or_build(&cgra, ii);
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.evictions(), 0);
        cache.set_capacity(3);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 5);
        // The three newest stamps (IIs 7, 8, 9) survive the shrink.
        let misses = cache.misses();
        for ii in 7..=9 {
            cache.get_or_build(&cgra, ii);
        }
        assert_eq!(cache.misses(), misses);
    }
}
