//! Shared MRRG cache: build each `R×C×II` graph once per compile.
//!
//! The mappers rebuild the [`Mrrg`](crate::Mrrg) for every II they attempt,
//! and the portfolio pipeline maps several partition candidates over the
//! same II range concurrently. The graph depends only on the architecture
//! and the II, so a [`Cgra`] carries an [`MrrgCache`] keyed by II: the
//! first requester builds the graph, everyone else (other candidates,
//! annealing restarts, verification, statistics) shares the same
//! [`Arc<Mrrg>`].

use crate::{Cgra, Mrrg};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A thread-safe II → [`Mrrg`] cache.
///
/// Cloning a [`Cgra`] shares its cache (the architecture is immutable, so
/// every clone produces identical graphs).
///
/// # Examples
///
/// ```
/// use panorama_arch::{Cgra, CgraConfig};
///
/// let cgra = Cgra::new(CgraConfig::small_4x4())?;
/// let a = cgra.mrrg_shared(3);
/// let b = cgra.mrrg_shared(3);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cgra.mrrg_cache().hits(), 1);
/// assert_eq!(cgra.mrrg_cache().misses(), 1);
/// # Ok::<(), panorama_arch::ArchError>(())
/// ```
#[derive(Debug, Default)]
pub struct MrrgCache {
    slots: Mutex<HashMap<usize, Arc<Mrrg>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MrrgCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        MrrgCache::default()
    }

    /// The cached graph for `ii`, building (and retaining) it on first
    /// request.
    ///
    /// # Panics
    ///
    /// Panics when `ii == 0` (propagated from [`Cgra::mrrg`]).
    pub fn get_or_build(&self, cgra: &Cgra, ii: usize) -> Arc<Mrrg> {
        if let Some(hit) = self.slots().get(&ii) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Build outside the lock so a slow build of one II never blocks
        // lookups of another. Two threads may race to build the same II;
        // the graph is deterministic, so keeping the first insert is fine.
        let built = Arc::new(cgra.mrrg(ii));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots();
        Arc::clone(slots.entry(ii).or_insert(built))
    }

    /// Locks the slot map, recovering from poisoning: the map is
    /// insert-only with `Arc`'d values, so a thread that panicked while
    /// holding the lock can never have left a half-built entry behind.
    /// One crashing portfolio candidate must not turn every later compile
    /// on the shared `Cgra` into a cascade of cache panics.
    fn slots(&self) -> MutexGuard<'_, HashMap<usize, Arc<Mrrg>>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to build a graph.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct IIs currently cached.
    pub fn len(&self) -> usize {
        self.slots().len()
    }

    /// Whether the cache holds no graphs yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CgraConfig;

    #[test]
    fn first_lookup_misses_then_hits() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_build(&cgra, 2);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.get_or_build(&cgra, 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_iis_get_distinct_graphs() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::new();
        let a = cache.get_or_build(&cgra, 2);
        let b = cache.get_or_build(&cgra, 3);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.ii(), 2);
        assert_eq!(b.ii(), 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn concurrent_lookups_share_one_graph() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = MrrgCache::new();
        let graphs: Vec<Arc<Mrrg>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get_or_build(&cgra, 4)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(graphs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn poisoned_lock_recovers_and_still_serves_hits() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let cache = Arc::new(MrrgCache::new());
        let first = cache.get_or_build(&cgra, 2);
        // Poison the slot mutex: panic in another thread while holding it,
        // the way a crashing portfolio candidate would mid-lookup.
        let poisoner = Arc::clone(&cache);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.slots.lock().unwrap();
            panic!("simulated candidate crash while holding the cache lock");
        });
        assert!(handle.join().is_err());
        assert!(cache.slots.is_poisoned());
        // The cache must keep working: hits still hit, inserts still land.
        let again = cache.get_or_build(&cgra, 2);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.hits(), 1);
        let other = cache.get_or_build(&cgra, 3);
        assert_eq!(other.ii(), 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cgra_clones_share_the_cache() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let clone = cgra.clone();
        let a = cgra.mrrg_shared(2);
        let b = clone.mrrg_shared(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cgra.mrrg_cache().misses(), 1);
        assert_eq!(cgra.mrrg_cache().hits(), 1);
    }
}
