//! The concrete CGRA: PEs, clusters, and physical links.

use crate::{ArchError, CgraConfig, Mrrg, MrrgCache};
use std::fmt;
use std::sync::Arc;

/// Index of one processing element; dense `0..num_pes`, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(pub(crate) u32);

impl PeId {
    /// Dense index of the PE.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PeId` from a dense index; meaningful only for indices
    /// obtained from the same [`Cgra`].
    pub fn from_index(index: usize) -> Self {
        PeId(index as u32)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// Index of one CGRA cluster; dense `0..num_clusters`, row-major over the
/// cluster grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub(crate) u32);

impl ClusterId {
    /// Dense index of the cluster.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cl{}", self.0)
    }
}

/// A directed physical connection between two PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source PE.
    pub src: PeId,
    /// Destination PE.
    pub dst: PeId,
    /// `true` when the link crosses a cluster boundary (these links are the
    /// scarce resource the cluster mapping minimises traffic over).
    pub inter_cluster: bool,
}

/// A validated CGRA instance with precomputed cluster and link structure.
///
/// # Examples
///
/// ```
/// use panorama_arch::{Cgra, CgraConfig};
///
/// let cgra = Cgra::new(CgraConfig::scaled_8x8())?;
/// let pe = cgra.pe_at(0, 0);
/// assert!(cgra.is_mem_pe(pe)); // left column of its cluster
/// # Ok::<(), panorama_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cgra {
    config: CgraConfig,
    links: Vec<Link>,
    /// Per-PE outgoing link indices into `links`.
    out_links: Vec<Vec<u32>>,
    /// Shared II → MRRG cache; clones of this `Cgra` share it, since the
    /// architecture (and hence every derived graph) is immutable.
    mrrg_cache: Arc<MrrgCache>,
}

impl Cgra {
    /// Builds a CGRA from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`CgraConfig::validate`] failures.
    pub fn new(config: CgraConfig) -> Result<Self, ArchError> {
        config.validate()?;
        let mut cgra = Cgra {
            links: Vec::new(),
            out_links: vec![Vec::new(); config.rows * config.cols],
            config,
            mrrg_cache: Arc::new(MrrgCache::new()),
        };
        cgra.build_links();
        Ok(cgra)
    }

    fn add_link(&mut self, src: PeId, dst: PeId, inter_cluster: bool) {
        let idx = self.links.len() as u32;
        self.links.push(Link {
            src,
            dst,
            inter_cluster,
        });
        self.out_links[src.index()].push(idx);
    }

    fn build_links(&mut self) {
        let (rows, cols) = (self.config.rows, self.config.cols);
        // Intra-cluster nearest-neighbour mesh: both directions for every
        // adjacent pair inside the same cluster.
        for r in 0..rows {
            for c in 0..cols {
                let p = self.pe_at(r, c);
                for (dr, dc) in [(0i64, 1i64), (1, 0), (0, -1), (-1, 0)] {
                    let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                    if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                        continue;
                    }
                    let q = self.pe_at(nr as usize, nc as usize);
                    if self.cluster_of(p) == self.cluster_of(q) {
                        self.add_link(p, q, false);
                    }
                }
            }
        }
        // Inter-cluster links: for each neighbouring cluster pair and each
        // direction, `inter_cluster_links` links distributed round-robin
        // over the facing boundary PE pairs (6 links over a 4-wide boundary
        // means two positions carry a second parallel link).
        let budget = self.config.inter_cluster_links;
        let (ch, cw) = (self.config.cluster_height(), self.config.cluster_width());
        let (cr, cc) = (self.config.cluster_rows, self.config.cluster_cols);
        // horizontal boundaries (cluster (i,j) → (i,j+1)) and back
        for ci in 0..cr {
            for cj in 0..cc.saturating_sub(1) {
                for l in 0..budget {
                    let row_in_cluster = l % ch;
                    let r = ci * ch + row_in_cluster;
                    let left = self.pe_at(r, cj * cw + cw - 1);
                    let right = self.pe_at(r, (cj + 1) * cw);
                    self.add_link(left, right, true);
                    self.add_link(right, left, true);
                }
            }
        }
        // vertical boundaries (cluster (i,j) → (i+1,j)) and back
        for ci in 0..cr.saturating_sub(1) {
            for cj in 0..cc {
                for l in 0..budget {
                    let col_in_cluster = l % cw;
                    let c = cj * cw + col_in_cluster;
                    let top = self.pe_at(ci * ch + ch - 1, c);
                    let bottom = self.pe_at((ci + 1) * ch, c);
                    self.add_link(top, bottom, true);
                    self.add_link(bottom, top, true);
                }
            }
        }
    }

    /// The architecture description.
    pub fn config(&self) -> &CgraConfig {
        &self.config
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.config.rows * self.config.cols
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.config.cluster_rows * self.config.cluster_cols
    }

    /// `(R, C)` cluster grid dimensions.
    pub fn cluster_grid(&self) -> (usize, usize) {
        (self.config.cluster_rows, self.config.cluster_cols)
    }

    /// The PE at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the position is outside the grid.
    pub fn pe_at(&self, row: usize, col: usize) -> PeId {
        assert!(
            row < self.config.rows && col < self.config.cols,
            "PE position out of grid"
        );
        PeId((row * self.config.cols + col) as u32)
    }

    /// `(row, col)` grid position of `pe`.
    pub fn pe_position(&self, pe: PeId) -> (usize, usize) {
        (pe.index() / self.config.cols, pe.index() % self.config.cols)
    }

    /// Iterates over all PEs.
    pub fn pes(&self) -> impl Iterator<Item = PeId> {
        (0..self.num_pes() as u32).map(PeId)
    }

    /// The cluster containing `pe`.
    pub fn cluster_of(&self, pe: PeId) -> ClusterId {
        let (r, c) = self.pe_position(pe);
        let cr = r / self.config.cluster_height();
        let cc = c / self.config.cluster_width();
        ClusterId((cr * self.config.cluster_cols + cc) as u32)
    }

    /// `(row, col)` of `cluster` in the cluster grid.
    pub fn cluster_position(&self, cluster: ClusterId) -> (usize, usize) {
        (
            cluster.index() / self.config.cluster_cols,
            cluster.index() % self.config.cluster_cols,
        )
    }

    /// The cluster at cluster-grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the position is outside the cluster grid.
    pub fn cluster_at(&self, row: usize, col: usize) -> ClusterId {
        assert!(
            row < self.config.cluster_rows && col < self.config.cluster_cols,
            "cluster position out of grid"
        );
        ClusterId((row * self.config.cluster_cols + col) as u32)
    }

    /// PEs belonging to `cluster`.
    pub fn cluster_pes(&self, cluster: ClusterId) -> Vec<PeId> {
        self.pes()
            .filter(|&p| self.cluster_of(p) == cluster)
            .collect()
    }

    /// Whether `pe` may execute memory operations.
    pub fn is_mem_pe(&self, pe: PeId) -> bool {
        if !self.config.mem_left_column_only {
            return true;
        }
        let (_, c) = self.pe_position(pe);
        c % self.config.cluster_width() == 0
    }

    /// Number of memory-capable PEs.
    pub fn num_mem_pes(&self) -> usize {
        self.pes().filter(|&p| self.is_mem_pe(p)).count()
    }

    /// Whether `pe` carries a multiplier (REVAMP-style heterogeneity:
    /// every `mul_every_n_columns`-th column; stride 1 = homogeneous;
    /// `mul_support = false` disables multipliers array-wide).
    pub fn has_multiplier(&self, pe: PeId) -> bool {
        if !self.config.mul_support {
            return false;
        }
        let (_, c) = self.pe_position(pe);
        c % self.config.mul_every_n_columns == 0
    }

    /// Number of multiplier-capable PEs.
    pub fn num_mul_pes(&self) -> usize {
        self.pes().filter(|&p| self.has_multiplier(p)).count()
    }

    /// All directed physical links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Directed links leaving `pe`.
    pub fn links_from(&self, pe: PeId) -> impl Iterator<Item = &Link> {
        self.out_links[pe.index()]
            .iter()
            .map(|&i| &self.links[i as usize])
    }

    /// Manhattan distance between two PEs.
    pub fn manhattan(&self, a: PeId, b: PeId) -> usize {
        let (ar, ac) = self.pe_position(a);
        let (br, bc) = self.pe_position(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// Manhattan distance between two clusters in the cluster grid.
    pub fn cluster_manhattan(&self, a: ClusterId, b: ClusterId) -> usize {
        let (ar, ac) = self.cluster_position(a);
        let (br, bc) = self.cluster_position(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// Builds the modulo routing resource graph for initiation interval
    /// `ii`.
    ///
    /// # Panics
    ///
    /// Panics when `ii == 0`.
    pub fn mrrg(&self, ii: usize) -> Mrrg {
        Mrrg::build(self, ii)
    }

    /// The cached modulo routing resource graph for `ii`, shared across
    /// every user of this `Cgra` (and its clones): built on first request,
    /// then returned by reference-counted handle. Prefer this over
    /// [`Cgra::mrrg`] anywhere a graph may be requested more than once.
    ///
    /// # Panics
    ///
    /// Panics when `ii == 0`.
    pub fn mrrg_shared(&self, ii: usize) -> Arc<Mrrg> {
        self.mrrg_cache.get_or_build(self, ii)
    }

    /// The II → MRRG cache (hit/miss counters for instrumentation).
    pub fn mrrg_cache(&self) -> &MrrgCache {
        &self.mrrg_cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cgra_16() -> Cgra {
        Cgra::new(CgraConfig::paper_16x16()).unwrap()
    }

    #[test]
    fn pe_indexing_roundtrip() {
        let g = cgra_16();
        for r in [0, 7, 15] {
            for c in [0, 8, 15] {
                let pe = g.pe_at(r, c);
                assert_eq!(g.pe_position(pe), (r, c));
            }
        }
        assert_eq!(g.num_pes(), 256);
    }

    #[test]
    fn cluster_assignment() {
        let g = cgra_16();
        assert_eq!(g.num_clusters(), 16);
        let pe = g.pe_at(5, 9); // cluster row 1, col 2
        assert_eq!(g.cluster_of(pe), g.cluster_at(1, 2));
        assert_eq!(g.cluster_pes(g.cluster_at(0, 0)).len(), 16);
    }

    #[test]
    fn memory_pes_are_left_columns() {
        let g = cgra_16();
        assert!(g.is_mem_pe(g.pe_at(3, 0)));
        assert!(g.is_mem_pe(g.pe_at(3, 4)));
        assert!(g.is_mem_pe(g.pe_at(3, 8)));
        assert!(!g.is_mem_pe(g.pe_at(3, 5)));
        // 4 mem columns × 16 rows
        assert_eq!(g.num_mem_pes(), 64);
    }

    #[test]
    fn intra_cluster_mesh_complete() {
        let g = cgra_16();
        // interior PE of a cluster: 4 intra-cluster neighbours
        let pe = g.pe_at(1, 1);
        let intra = g.links_from(pe).filter(|l| !l.inter_cluster).count();
        assert_eq!(intra, 4);
        // corner PE of the array: 2
        let pe = g.pe_at(0, 0);
        assert_eq!(g.links_from(pe).filter(|l| !l.inter_cluster).count(), 2);
    }

    #[test]
    fn no_nn_links_across_cluster_boundaries() {
        let g = cgra_16();
        // PE (0,3) is the right edge of cluster (0,0); its east neighbour
        // (0,4) is another cluster: only inter-cluster links may connect.
        let pe = g.pe_at(0, 3);
        for l in g.links_from(pe) {
            if g.cluster_of(l.dst) != g.cluster_of(pe) {
                assert!(l.inter_cluster);
            }
        }
    }

    #[test]
    fn inter_cluster_budget_respected() {
        let g = cgra_16();
        // links from cluster (0,0) to (0,1): exactly 6
        let a = g.cluster_at(0, 0);
        let b = g.cluster_at(0, 1);
        let count = g
            .links()
            .iter()
            .filter(|l| l.inter_cluster && g.cluster_of(l.src) == a && g.cluster_of(l.dst) == b)
            .count();
        assert_eq!(count, 6);
        // and symmetric
        let back = g
            .links()
            .iter()
            .filter(|l| l.inter_cluster && g.cluster_of(l.src) == b && g.cluster_of(l.dst) == a)
            .count();
        assert_eq!(back, 6);
    }

    #[test]
    fn linear_cgra_is_a_chain() {
        let g = Cgra::new(CgraConfig::linear_6x1()).unwrap();
        assert_eq!(g.num_pes(), 6);
        assert_eq!(g.num_clusters(), 2);
        // middle PEs connect left+right (one may be inter-cluster)
        let pe = g.pe_at(0, 1);
        assert_eq!(g.links_from(pe).count(), 2);
        // every PE is memory-capable in this preset
        assert!(g.pes().all(|p| g.is_mem_pe(p)));
    }

    #[test]
    fn manhattan_distances() {
        let g = cgra_16();
        assert_eq!(g.manhattan(g.pe_at(0, 0), g.pe_at(3, 4)), 7);
        assert_eq!(
            g.cluster_manhattan(g.cluster_at(0, 0), g.cluster_at(3, 3)),
            6
        );
    }

    #[test]
    fn display_ids() {
        assert_eq!(PeId(3).to_string(), "pe3");
        assert_eq!(ClusterId(2).to_string(), "cl2");
    }
}
