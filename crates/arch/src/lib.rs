//! CGRA architecture model and modulo routing resource graph (MRRG).
//!
//! The modelled machine follows the paper's evaluation setup: a grid of
//! single-cycle ALU processing elements (PEs) with
//!
//! * nearest-neighbour, single-cycle single-hop interconnect;
//! * a register file per PE (8 registers, 4 read / 4 write ports by
//!   default) for buffering values across cycles;
//! * a cluster grid (e.g. 4×4 clusters of 4×4 PEs on the 16×16 CGRA) with a
//!   fixed budget of inter-cluster links between neighbouring clusters;
//! * memory-capable PEs in the left-most column of each cluster.
//!
//! [`Mrrg`] time-extends the architecture to a target initiation interval
//! (II): each physical resource becomes II nodes, edges that move data
//! between cycles wrap modulo II, and PathFinder-style routing negotiates
//! node capacities ([`panorama-mapper`] implements the router).
//!
//! # Examples
//!
//! ```
//! use panorama_arch::{Cgra, CgraConfig};
//!
//! let cgra = Cgra::new(CgraConfig::paper_16x16())?;
//! assert_eq!(cgra.num_pes(), 256);
//! assert_eq!(cgra.cluster_grid(), (4, 4));
//! let mrrg = cgra.mrrg(4); // II = 4
//! assert!(mrrg.num_nodes() > 0);
//! # Ok::<(), panorama_arch::ArchError>(())
//! ```
//!
//! [`panorama-mapper`]: https://docs.rs/panorama-mapper

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adl;
mod cache;
mod cgra;
mod config;
mod mrrg;

pub use adl::ParseArchError;
pub use cache::{MrrgCache, DEFAULT_MRRG_CACHE_CAPACITY};
pub use cgra::{Cgra, ClusterId, Link, PeId};
pub use config::{ArchError, CgraConfig};
pub use mrrg::{Mrrg, MrrgEdge, MrrgNodeId, NodeKind};
