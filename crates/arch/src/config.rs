//! CGRA architecture description.

use std::error::Error;
use std::fmt;

/// Architecture description of a clustered CGRA.
///
/// Validated by [`Cgra::new`](crate::Cgra::new); the cluster grid must tile
/// the PE grid exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CgraConfig {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// Cluster rows (the paper's `R`).
    pub cluster_rows: usize,
    /// Cluster columns (the paper's `C`).
    pub cluster_cols: usize,
    /// Registers per PE register file.
    pub rf_size: usize,
    /// RF read ports per PE per cycle.
    pub rf_read_ports: usize,
    /// RF write ports per PE per cycle.
    pub rf_write_ports: usize,
    /// Directed inter-cluster links per neighbouring cluster pair per
    /// direction (the paper's detailed architecture uses 6).
    pub inter_cluster_links: usize,
    /// Whether only the left-most PE column of each cluster may execute
    /// loads/stores (the paper's memory model). When `false`, every PE is
    /// memory-capable.
    pub mem_left_column_only: bool,
    /// Heterogeneity (REVAMP-style): only every `n`-th PE column carries a
    /// multiplier. `1` (the default) is the paper's homogeneous array.
    pub mul_every_n_columns: usize,
    /// Whether the array has multipliers at all. `false` models an
    /// adder-only fabric (ADL directive `mul none`); kernels containing
    /// `mul` ops are then statically unmappable, which the lint
    /// prechecker reports instead of letting a mapper time out.
    pub mul_support: bool,
}

impl CgraConfig {
    /// The paper's main evaluation target: 16×16 PEs in 4×4 clusters of
    /// 4×4, RF of 8 with 4R/4W ports, 6 inter-cluster links.
    pub fn paper_16x16() -> Self {
        CgraConfig {
            rows: 16,
            cols: 16,
            cluster_rows: 4,
            cluster_cols: 4,
            rf_size: 8,
            rf_read_ports: 4,
            rf_write_ports: 4,
            inter_cluster_links: 6,
            mem_left_column_only: true,
            mul_every_n_columns: 1,
            mul_support: true,
        }
    }

    /// The paper's power-comparison baseline: 9×9 PEs in 3×3 clusters of
    /// 3×3.
    pub fn paper_9x9() -> Self {
        CgraConfig {
            rows: 9,
            cols: 9,
            cluster_rows: 3,
            cluster_cols: 3,
            ..Self::paper_16x16()
        }
    }

    /// A scaled-down 8×8 CGRA (2×2 clusters of 4×4) used by the default
    /// experiment profile so the suite regenerates quickly.
    pub fn scaled_8x8() -> Self {
        CgraConfig {
            rows: 8,
            cols: 8,
            cluster_rows: 2,
            cluster_cols: 2,
            ..Self::paper_16x16()
        }
    }

    /// A small 4×4 CGRA (single cluster) for tests and the Table 1b row.
    pub fn small_4x4() -> Self {
        CgraConfig {
            rows: 4,
            cols: 4,
            cluster_rows: 1,
            cluster_cols: 1,
            ..Self::paper_16x16()
        }
    }

    /// The 6×1 linear CGRA of the motivating example (Figure 3): two 3×1
    /// clusters, single-cycle single-hop left/right links only.
    pub fn linear_6x1() -> Self {
        CgraConfig {
            rows: 1,
            cols: 6,
            cluster_rows: 1,
            cluster_cols: 2,
            rf_size: 2,
            rf_read_ports: 2,
            rf_write_ports: 2,
            inter_cluster_links: 1,
            mem_left_column_only: false,
            mul_every_n_columns: 1,
            mul_support: true,
        }
    }

    /// Deterministic enumeration of the architecture space the fuzzer
    /// sweeps: the presets plus heterogeneous-FU, memory-model, cluster
    /// shape, link-budget, and register-pressure variants. Every entry
    /// passes [`CgraConfig::validate`]; the order is part of the fuzzer's
    /// reproducibility contract, so append new variants at the end.
    pub fn sample_space() -> Vec<(&'static str, CgraConfig)> {
        let space = vec![
            ("4x4", Self::small_4x4()),
            ("8x8", Self::scaled_8x8()),
            ("6x1", Self::linear_6x1()),
            // Heterogeneous FUs: multipliers only in every 2nd/3rd column.
            (
                "4x4-mul2",
                CgraConfig {
                    mul_every_n_columns: 2,
                    ..Self::small_4x4()
                },
            ),
            (
                "8x8-mul3",
                CgraConfig {
                    mul_every_n_columns: 3,
                    ..Self::scaled_8x8()
                },
            ),
            // Adder-only fabric: kernels with muls are statically infeasible.
            (
                "4x4-nomul",
                CgraConfig {
                    mul_support: false,
                    ..Self::small_4x4()
                },
            ),
            // All-PE memory model instead of left-column-only.
            (
                "4x4-memall",
                CgraConfig {
                    mem_left_column_only: false,
                    ..Self::small_4x4()
                },
            ),
            // Varied cluster shapes on the same PE budget.
            (
                "4x8-c1x2",
                CgraConfig {
                    rows: 4,
                    cols: 8,
                    cluster_rows: 1,
                    cluster_cols: 2,
                    ..Self::paper_16x16()
                },
            ),
            (
                "6x6-c2x2",
                CgraConfig {
                    rows: 6,
                    cols: 6,
                    cluster_rows: 2,
                    cluster_cols: 2,
                    ..Self::paper_16x16()
                },
            ),
            // Link-starved inter-cluster fabric.
            (
                "8x8-icl1",
                CgraConfig {
                    inter_cluster_links: 1,
                    ..Self::scaled_8x8()
                },
            ),
            // Register-pressure variant: tiny RF with single ports.
            (
                "4x4-rf2",
                CgraConfig {
                    rf_size: 2,
                    rf_read_ports: 1,
                    rf_write_ports: 1,
                    ..Self::small_4x4()
                },
            ),
        ];
        debug_assert!(space.iter().all(|(_, c)| c.validate().is_ok()));
        space
    }

    /// PEs per cluster row (`rows / cluster_rows`).
    pub fn cluster_height(&self) -> usize {
        self.rows / self.cluster_rows
    }

    /// PEs per cluster column (`cols / cluster_cols`).
    pub fn cluster_width(&self) -> usize {
        self.cols / self.cluster_cols
    }

    /// Validates grid divisibility and nonzero dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] describing the first violated requirement.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ArchError::EmptyGrid);
        }
        if self.cluster_rows == 0
            || self.cluster_cols == 0
            || !self.rows.is_multiple_of(self.cluster_rows)
            || !self.cols.is_multiple_of(self.cluster_cols)
        {
            return Err(ArchError::ClusterMismatch {
                rows: self.rows,
                cols: self.cols,
                cluster_rows: self.cluster_rows,
                cluster_cols: self.cluster_cols,
            });
        }
        if self.rf_size == 0 || self.rf_read_ports == 0 || self.rf_write_ports == 0 {
            return Err(ArchError::DegenerateRegisterFile);
        }
        if self.mul_every_n_columns == 0 || self.mul_every_n_columns > self.cols {
            return Err(ArchError::NoMultipliers);
        }
        Ok(())
    }
}

/// Error produced when validating a [`CgraConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// Zero-sized PE grid.
    EmptyGrid,
    /// Cluster grid does not tile the PE grid.
    ClusterMismatch {
        /// PE rows.
        rows: usize,
        /// PE columns.
        cols: usize,
        /// Cluster rows.
        cluster_rows: usize,
        /// Cluster columns.
        cluster_cols: usize,
    },
    /// Register file with zero registers or ports.
    DegenerateRegisterFile,
    /// Heterogeneity stride leaves the array without any multiplier.
    NoMultipliers,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::EmptyGrid => write!(f, "PE grid must be non-empty"),
            ArchError::ClusterMismatch {
                rows,
                cols,
                cluster_rows,
                cluster_cols,
            } => write!(
                f,
                "cluster grid {cluster_rows}x{cluster_cols} does not tile PE grid {rows}x{cols}"
            ),
            ArchError::DegenerateRegisterFile => {
                write!(f, "register file needs at least one register and port")
            }
            ArchError::NoMultipliers => {
                write!(f, "multiplier column stride must be in 1..=cols")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            CgraConfig::paper_16x16(),
            CgraConfig::paper_9x9(),
            CgraConfig::scaled_8x8(),
            CgraConfig::small_4x4(),
            CgraConfig::linear_6x1(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn sample_space_entries_validate_and_have_unique_names() {
        let space = CgraConfig::sample_space();
        assert!(space.len() >= 8, "fuzz space should cover many variants");
        let mut names: Vec<_> = space.iter().map(|(n, _)| *n).collect();
        for (name, cfg) in &space {
            cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), space.len(), "duplicate sample-space names");
    }

    #[test]
    fn paper_dimensions() {
        let cfg = CgraConfig::paper_16x16();
        assert_eq!(cfg.cluster_height(), 4);
        assert_eq!(cfg.cluster_width(), 4);
        let cfg = CgraConfig::paper_9x9();
        assert_eq!(cfg.cluster_height(), 3);
    }

    #[test]
    fn bad_tiling_rejected() {
        let cfg = CgraConfig {
            cluster_rows: 3,
            ..CgraConfig::paper_16x16()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ArchError::ClusterMismatch { .. })
        ));
    }

    #[test]
    fn empty_and_degenerate_rejected() {
        let cfg = CgraConfig {
            rows: 0,
            ..CgraConfig::paper_16x16()
        };
        assert_eq!(cfg.validate(), Err(ArchError::EmptyGrid));
        let cfg = CgraConfig {
            rf_size: 0,
            ..CgraConfig::paper_16x16()
        };
        assert_eq!(cfg.validate(), Err(ArchError::DegenerateRegisterFile));
    }

    #[test]
    fn error_messages() {
        let e = ArchError::ClusterMismatch {
            rows: 16,
            cols: 16,
            cluster_rows: 3,
            cluster_cols: 4,
        };
        assert!(e.to_string().contains("3x4"));
    }
}
