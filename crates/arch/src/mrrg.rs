//! Modulo routing resource graph: the CGRA time-extended to II cycles.
//!
//! Every physical resource (FU slot, register, port, link) becomes II
//! nodes, one per cycle of the repeating schedule. Edges either stay within
//! a cycle (operand selection) or advance time by one cycle modulo II (link
//! traversal, register writes and holds). A mapped DFG occupies MRRG nodes;
//! PathFinder routing negotiates the per-node capacities.

use crate::{Cgra, PeId};
use std::fmt;

/// Index of one MRRG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MrrgNodeId(pub(crate) u32);

impl MrrgNodeId {
    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index; meaningful only for indices
    /// obtained from the same [`Mrrg`].
    pub fn from_index(index: usize) -> Self {
        MrrgNodeId(index as u32)
    }
}

impl fmt::Display for MrrgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// What a node models physically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Functional-unit execution slot (capacity 1).
    Fu,
    /// Crossbar output / broadcast point (not a scarce resource).
    Out,
    /// PE input mux (capacity: operand + RF-write bandwidth).
    In,
    /// Register-file write port bundle.
    RegWrite,
    /// Register-file read port bundle.
    RegRead,
    /// One register holding a value for one cycle (capacity 1).
    Reg {
        /// Register index within the PE's register file.
        index: u8,
    },
    /// A physical link leaving a PE (capacity 1); carries data to the
    /// destination PE's input in the next cycle.
    Link {
        /// Index into [`Cgra::links`].
        index: u32,
    },
}

/// One outgoing MRRG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrrgEdge {
    /// Destination node.
    pub dst: MrrgNodeId,
    /// Whether traversing this edge advances time by one cycle.
    pub advance: bool,
}

/// The modulo routing resource graph of a [`Cgra`] at a fixed II.
///
/// # Examples
///
/// ```
/// use panorama_arch::{Cgra, CgraConfig, NodeKind};
///
/// let cgra = Cgra::new(CgraConfig::small_4x4())?;
/// let mrrg = cgra.mrrg(2);
/// let pe = cgra.pe_at(0, 0);
/// let fu = mrrg.fu(pe, 0);
/// assert_eq!(mrrg.kind(fu), NodeKind::Fu);
/// assert_eq!(mrrg.capacity(fu), 1);
/// # Ok::<(), panorama_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mrrg {
    ii: usize,
    num_pes: usize,
    num_links: usize,
    rf_size: usize,
    /// Nodes per time slice.
    slice: usize,
    kinds: Vec<NodeKind>,
    capacities: Vec<u16>,
    /// CSR adjacency.
    edge_offsets: Vec<u32>,
    edges: Vec<MrrgEdge>,
    /// PE owning each node-within-slice position (links map to their
    /// source PE).
    owner_pe: Vec<u32>,
}

/// Nodes per PE within one time slice: Fu, Out, In, RegWrite, RegRead,
/// then `rf_size` registers.
const PE_FIXED_NODES: usize = 5;

impl Mrrg {
    /// Time-extends `cgra` to `ii` cycles.
    ///
    /// # Panics
    ///
    /// Panics when `ii == 0`.
    pub(crate) fn build(cgra: &Cgra, ii: usize) -> Mrrg {
        assert!(ii > 0, "initiation interval must be at least 1");
        let cfg = cgra.config();
        let num_pes = cgra.num_pes();
        let num_links = cgra.links().len();
        let rf_size = cfg.rf_size;
        let per_pe = PE_FIXED_NODES + rf_size;
        let slice = num_pes * per_pe + num_links;
        let total = slice * ii;

        let mut kinds = Vec::with_capacity(total);
        let mut capacities = Vec::with_capacity(total);
        let mut owner_pe = Vec::with_capacity(slice);
        // node layout within a slice: all PE blocks, then all links
        for pe in 0..num_pes {
            let in_cap = (cfg.rf_write_ports + 2) as u16;
            for _ in 0..1 {
                owner_pe.push(pe as u32);
            }
            owner_pe.extend(std::iter::repeat_n(pe as u32, per_pe - 1));
            kinds.push(NodeKind::Fu);
            capacities.push(1);
            kinds.push(NodeKind::Out);
            capacities.push(u16::MAX);
            kinds.push(NodeKind::In);
            capacities.push(in_cap);
            kinds.push(NodeKind::RegWrite);
            capacities.push(cfg.rf_write_ports as u16);
            kinds.push(NodeKind::RegRead);
            capacities.push(cfg.rf_read_ports as u16);
            for r in 0..rf_size {
                kinds.push(NodeKind::Reg { index: r as u8 });
                capacities.push(1);
            }
        }
        for (i, link) in cgra.links().iter().enumerate() {
            owner_pe.push(link.src.index() as u32);
            kinds.push(NodeKind::Link { index: i as u32 });
            capacities.push(1);
        }
        // replicate the slice for every cycle
        let kinds: Vec<NodeKind> = (0..ii).flat_map(|_| kinds.iter().copied()).collect();
        let capacities: Vec<u16> = (0..ii).flat_map(|_| capacities.iter().copied()).collect();

        let mut mrrg = Mrrg {
            ii,
            num_pes,
            num_links,
            rf_size,
            slice,
            kinds,
            capacities,
            edge_offsets: Vec::new(),
            edges: Vec::new(),
            owner_pe,
        };
        mrrg.build_edges(cgra);
        mrrg
    }

    fn build_edges(&mut self, cgra: &Cgra) {
        let ii = self.ii;
        let mut adjacency: Vec<Vec<MrrgEdge>> = vec![Vec::new(); self.slice * ii];
        let mut push = |src: MrrgNodeId, dst: MrrgNodeId, advance: bool| {
            adjacency[src.index()].push(MrrgEdge { dst, advance });
        };
        for t in 0..ii {
            let next = (t + 1) % ii;
            for pe in cgra.pes() {
                let fu = self.fu(pe, t);
                let out = self.out(pe, t);
                let input = self.input(pe, t);
                let regw = self.reg_write(pe, t);
                let regr = self.reg_read(pe, t);
                // execution result broadcast
                push(fu, out, false);
                // operand consumption
                push(input, fu, false);
                // crossbar pass-through: an arriving value may leave again
                // in the same cycle (single-cycle single-hop forwarding)
                push(input, out, false);
                // spill into RF
                push(input, regw, false);
                for r in 0..self.rf_size {
                    push(regw, self.reg(pe, r, next), true);
                    push(self.reg(pe, r, t), self.reg(pe, r, next), true);
                    push(self.reg(pe, r, t), regr, false);
                }
                // RF read feeds execution or onward routing
                push(regr, fu, false);
                push(regr, out, false);
                // same-PE forwarding to the next cycle
                push(out, self.input(pe, next), true);
            }
            for (i, link) in cgra.links().iter().enumerate() {
                let link_node = self.link_node(i, t);
                push(self.out(link.src, t), link_node, false);
                push(link_node, self.input(link.dst, next), true);
            }
        }
        // CSR-pack
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        let mut edges = Vec::new();
        offsets.push(0u32);
        for adj in &adjacency {
            edges.extend_from_slice(adj);
            offsets.push(edges.len() as u32);
        }
        self.edge_offsets = offsets;
        self.edges = edges;
    }

    /// The initiation interval this graph was unrolled to.
    pub fn ii(&self) -> usize {
        self.ii
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of physical links represented per time slice.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    fn per_pe(&self) -> usize {
        PE_FIXED_NODES + self.rf_size
    }

    fn node(&self, slice_offset: usize, t: usize) -> MrrgNodeId {
        debug_assert!(t < self.ii && slice_offset < self.slice);
        MrrgNodeId((t * self.slice + slice_offset) as u32)
    }

    /// FU slot of `pe` at cycle `t`.
    pub fn fu(&self, pe: PeId, t: usize) -> MrrgNodeId {
        self.node(pe.index() * self.per_pe(), t)
    }

    /// Broadcast point of `pe` at cycle `t`.
    pub fn out(&self, pe: PeId, t: usize) -> MrrgNodeId {
        self.node(pe.index() * self.per_pe() + 1, t)
    }

    /// Input mux of `pe` at cycle `t`.
    pub fn input(&self, pe: PeId, t: usize) -> MrrgNodeId {
        self.node(pe.index() * self.per_pe() + 2, t)
    }

    /// RF write-port bundle of `pe` at cycle `t`.
    pub fn reg_write(&self, pe: PeId, t: usize) -> MrrgNodeId {
        self.node(pe.index() * self.per_pe() + 3, t)
    }

    /// RF read-port bundle of `pe` at cycle `t`.
    pub fn reg_read(&self, pe: PeId, t: usize) -> MrrgNodeId {
        self.node(pe.index() * self.per_pe() + 4, t)
    }

    /// Register `r` of `pe` at cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rf_size`.
    pub fn reg(&self, pe: PeId, r: usize, t: usize) -> MrrgNodeId {
        assert!(r < self.rf_size, "register index out of range");
        self.node(pe.index() * self.per_pe() + PE_FIXED_NODES + r, t)
    }

    /// Node of physical link `index` at cycle `t`.
    pub fn link_node(&self, index: usize, t: usize) -> MrrgNodeId {
        self.node(self.num_pes * self.per_pe() + index, t)
    }

    /// Kind of `node`.
    pub fn kind(&self, node: MrrgNodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// Capacity (simultaneous users per cycle) of `node`.
    pub fn capacity(&self, node: MrrgNodeId) -> u16 {
        self.capacities[node.index()]
    }

    /// Cycle of `node` (`0..ii`).
    pub fn time_of(&self, node: MrrgNodeId) -> usize {
        node.index() / self.slice
    }

    /// The *physical resource* behind `node`: the same id for all II
    /// time-slice copies of one FU / port / register / link. Used by the
    /// cycle-level simulator, which tracks occupancy per physical resource
    /// per absolute cycle rather than per modulo slot.
    pub fn resource_of(&self, node: MrrgNodeId) -> usize {
        node.index() % self.slice
    }

    /// Number of distinct physical resources (nodes per time slice).
    pub fn num_resources(&self) -> usize {
        self.slice
    }

    /// The PE owning `node` (links belong to their source PE).
    pub fn pe_of(&self, node: MrrgNodeId) -> PeId {
        PeId(self.owner_pe[node.index() % self.slice])
    }

    /// Outgoing edges of `node`.
    pub fn out_edges(&self, node: MrrgNodeId) -> &[MrrgEdge] {
        let i = node.index();
        let start = self.edge_offsets[i] as usize;
        let end = self.edge_offsets[i + 1] as usize;
        &self.edges[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CgraConfig;

    fn small() -> (Cgra, Mrrg) {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let mrrg = cgra.mrrg(3);
        (cgra, mrrg)
    }

    #[test]
    fn node_counts() {
        let (cgra, mrrg) = small();
        let per_pe = 5 + cgra.config().rf_size;
        let expected = 3 * (16 * per_pe + cgra.links().len());
        assert_eq!(mrrg.num_nodes(), expected);
        assert!(mrrg.num_edges() > 0);
        assert_eq!(mrrg.ii(), 3);
    }

    #[test]
    fn accessors_agree_with_kinds() {
        let (cgra, mrrg) = small();
        let pe = cgra.pe_at(2, 1);
        for t in 0..3 {
            assert_eq!(mrrg.kind(mrrg.fu(pe, t)), NodeKind::Fu);
            assert_eq!(mrrg.kind(mrrg.out(pe, t)), NodeKind::Out);
            assert_eq!(mrrg.kind(mrrg.input(pe, t)), NodeKind::In);
            assert_eq!(mrrg.kind(mrrg.reg_write(pe, t)), NodeKind::RegWrite);
            assert_eq!(mrrg.kind(mrrg.reg_read(pe, t)), NodeKind::RegRead);
            assert_eq!(mrrg.kind(mrrg.reg(pe, 7, t)), NodeKind::Reg { index: 7 });
            assert_eq!(mrrg.time_of(mrrg.fu(pe, t)), t);
            assert_eq!(mrrg.pe_of(mrrg.fu(pe, t)), pe);
        }
    }

    #[test]
    fn capacities_follow_config() {
        let (cgra, mrrg) = small();
        let pe = cgra.pe_at(0, 0);
        assert_eq!(mrrg.capacity(mrrg.fu(pe, 0)), 1);
        assert_eq!(mrrg.capacity(mrrg.reg_write(pe, 0)), 4);
        assert_eq!(mrrg.capacity(mrrg.reg_read(pe, 0)), 4);
        assert_eq!(mrrg.capacity(mrrg.reg(pe, 0, 0)), 1);
        assert_eq!(mrrg.capacity(mrrg.out(pe, 0)), u16::MAX);
    }

    #[test]
    fn edges_advance_time_correctly() {
        let (cgra, mrrg) = small();
        let pe = cgra.pe_at(1, 1);
        // out(pe, 2) wraps to input(pe, 0)
        let out = mrrg.out(pe, 2);
        let wrapped = mrrg
            .out_edges(out)
            .iter()
            .find(|e| mrrg.kind(e.dst) == NodeKind::In && mrrg.pe_of(e.dst) == pe)
            .expect("self-forwarding edge exists");
        assert!(wrapped.advance);
        assert_eq!(mrrg.time_of(wrapped.dst), 0);
    }

    #[test]
    fn link_topology_matches_cgra() {
        let (cgra, mrrg) = small();
        let pe = cgra.pe_at(0, 0);
        let out = mrrg.out(pe, 0);
        // out feeds: one link per outgoing physical link (same cycle)
        let link_edges = mrrg
            .out_edges(out)
            .iter()
            .filter(|e| matches!(mrrg.kind(e.dst), NodeKind::Link { .. }))
            .count();
        assert_eq!(link_edges, cgra.links_from(pe).count());
        // each link node advances into the destination input
        for e in mrrg.out_edges(out) {
            if let NodeKind::Link { index } = mrrg.kind(e.dst) {
                let link = cgra.links()[index as usize];
                let hop = mrrg.out_edges(e.dst)[0];
                assert!(hop.advance);
                assert_eq!(mrrg.pe_of(hop.dst), link.dst);
                assert_eq!(mrrg.kind(hop.dst), NodeKind::In);
            }
        }
    }

    #[test]
    fn register_holds_chain_through_time() {
        let (cgra, mrrg) = small();
        let pe = cgra.pe_at(3, 3);
        let reg = mrrg.reg(pe, 2, 0);
        let hold = mrrg
            .out_edges(reg)
            .iter()
            .find(|e| mrrg.kind(e.dst) == NodeKind::Reg { index: 2 })
            .expect("hold edge exists");
        assert!(hold.advance);
        assert_eq!(mrrg.time_of(hold.dst), 1);
    }

    #[test]
    fn no_same_cycle_cycles() {
        // same-cycle edges must form a DAG, otherwise routing could "travel
        // back in time": check by Kahn over non-advance edges of slice 0
        let (_, mrrg) = small();
        let n = mrrg.num_nodes();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for e in mrrg.out_edges(MrrgNodeId(v as u32)) {
                if !e.advance {
                    indeg[e.dst.index()] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for e in mrrg.out_edges(MrrgNodeId(v as u32)) {
                if !e.advance {
                    indeg[e.dst.index()] -= 1;
                    if indeg[e.dst.index()] == 0 {
                        queue.push(e.dst.index());
                    }
                }
            }
        }
        assert_eq!(seen, n, "same-cycle edges contain a cycle");
    }

    #[test]
    fn ii_one_wraps_to_itself() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let mrrg = cgra.mrrg(1);
        let pe = cgra.pe_at(0, 1);
        let out = mrrg.out(pe, 0);
        // forwarding edge wraps back into cycle 0
        let e = mrrg
            .out_edges(out)
            .iter()
            .find(|e| e.advance && mrrg.pe_of(e.dst) == pe)
            .unwrap();
        assert_eq!(mrrg.time_of(e.dst), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_panics() {
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let _ = cgra.mrrg(0);
    }
}
