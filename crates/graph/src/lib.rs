//! Arena-based directed graph substrate for the PANORAMA CGRA mapping
//! framework.
//!
//! Every graph-shaped structure in the workspace — dataflow graphs
//! ([`panorama-dfg`]), cluster dependency graphs ([`panorama-cluster`]) and
//! modulo routing resource graphs ([`panorama-arch`]) — is built on
//! [`Digraph`], a compact adjacency-list digraph with typed node/edge
//! indices and cheap O(1) endpoint lookups.
//!
//! # Examples
//!
//! ```
//! use panorama_graph::Digraph;
//!
//! let mut g: Digraph<&str, u32> = Digraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! g.add_edge(a, b, 7);
//! assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b]);
//! assert!(g.topo_order().is_ok());
//! ```
//!
//! [`panorama-dfg`]: https://docs.rs/panorama-dfg
//! [`panorama-cluster`]: https://docs.rs/panorama-cluster
//! [`panorama-arch`]: https://docs.rs/panorama-arch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod digraph;
mod dot;
mod matrix;
mod scc;

pub use algo::{Components, CycleError};
pub use digraph::{Digraph, EdgeId, EdgeRef, NodeId};
pub use dot::DotOptions;
pub use matrix::AdjacencyMatrix;
pub use scc::Sccs;
