//! Graph algorithms: topological ordering, longest paths, connected
//! components, reachability.

use crate::{Digraph, NodeId};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned when an operation requiring a DAG meets a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to participate in (or be downstream of) a cycle.
    pub witness: NodeId,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle through {}", self.witness)
    }
}

impl Error for CycleError {}

/// Weakly-connected component labelling of a graph.
///
/// Produced by [`Components::of`]; component ids are dense `0..count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    labels: Vec<u32>,
    count: usize,
}

impl Components {
    /// Computes weakly connected components (edge direction ignored).
    pub fn of<N, E>(graph: &Digraph<N, E>) -> Self {
        let n = graph.node_count();
        let mut labels = vec![u32::MAX; n];
        let mut count = 0usize;
        let mut queue = VecDeque::new();
        for start in graph.node_ids() {
            if labels[start.index()] != u32::MAX {
                continue;
            }
            labels[start.index()] = count as u32;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                for w in graph.successors(v).chain(graph.predecessors(v)) {
                    if labels[w.index()] == u32::MAX {
                        labels[w.index()] = count as u32;
                        queue.push_back(w);
                    }
                }
            }
            count += 1;
        }
        Components { labels, count }
    }

    /// Number of weakly connected components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component label of `node` (dense, `0..count`).
    pub fn label(&self, node: NodeId) -> usize {
        self.labels[node.index()] as usize
    }

    /// Returns `true` when `a` and `b` lie in the same component.
    pub fn same(&self, a: NodeId, b: NodeId) -> bool {
        self.labels[a.index()] == self.labels[b.index()]
    }
}

impl<N, E> Digraph<N, E> {
    /// Kahn topological order over the edges selected by `use_edge`.
    ///
    /// Dataflow graphs carry loop-carried back edges which must be excluded
    /// when ordering operations of a single iteration; pass a predicate that
    /// rejects those edges.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the selected edges contain a cycle.
    pub fn topo_order_filtered(
        &self,
        mut use_edge: impl FnMut(crate::EdgeRef<'_, E>) -> bool,
    ) -> Result<Vec<NodeId>, CycleError> {
        let n = self.node_count();
        let mut indeg = vec![0usize; n];
        let mut kept_out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for e in self.edge_refs() {
            if use_edge(e) {
                indeg[e.dst.index()] += 1;
                kept_out[e.src.index()].push(e.dst);
            }
        }
        let mut queue: VecDeque<NodeId> =
            self.node_ids().filter(|v| indeg[v.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &kept_out[v.index()] {
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    queue.push_back(w);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let witness = self
                .node_ids()
                .find(|v| indeg[v.index()] > 0)
                .expect("cycle implies a node with residual in-degree");
            Err(CycleError { witness })
        }
    }

    /// Kahn topological order over all edges.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the graph is not a DAG.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, CycleError> {
        self.topo_order_filtered(|_| true)
    }

    /// Returns `true` when the graph (over all edges) is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topo_order().is_ok()
    }

    /// Longest-path length (in edges) from any source to each node, over the
    /// edges selected by `use_edge`. This is the classic ASAP level used for
    /// scheduling priorities.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the selected edges contain a cycle.
    pub fn longest_path_levels(
        &self,
        mut use_edge: impl FnMut(crate::EdgeRef<'_, E>) -> bool,
    ) -> Result<Vec<usize>, CycleError> {
        // Two-pass: record which edges are kept, then relax in topo order.
        let mut kept = vec![false; self.edge_count()];
        for e in self.edge_refs() {
            kept[e.id.index()] = use_edge(e);
        }
        let order = self.topo_order_filtered(|e| kept[e.id.index()])?;
        let mut level = vec![0usize; self.node_count()];
        for v in order {
            for e in self.outgoing(v) {
                if kept[e.id.index()] {
                    let cand = level[v.index()] + 1;
                    if cand > level[e.dst.index()] {
                        level[e.dst.index()] = cand;
                    }
                }
            }
        }
        Ok(level)
    }

    /// Height of each node: longest path (in edges) from the node to any
    /// sink, over the edges selected by `use_edge`. This is the classic
    /// scheduling priority ("height-based priority", Rau MICRO'94).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the selected edges contain a cycle.
    pub fn heights(
        &self,
        mut use_edge: impl FnMut(crate::EdgeRef<'_, E>) -> bool,
    ) -> Result<Vec<usize>, CycleError> {
        let mut kept = vec![false; self.edge_count()];
        for e in self.edge_refs() {
            kept[e.id.index()] = use_edge(e);
        }
        let order = self.topo_order_filtered(|e| kept[e.id.index()])?;
        let mut height = vec![0usize; self.node_count()];
        for &v in order.iter().rev() {
            for e in self.outgoing(v) {
                if kept[e.id.index()] {
                    let cand = height[e.dst.index()] + 1;
                    if cand > height[v.index()] {
                        height[v.index()] = cand;
                    }
                }
            }
        }
        Ok(height)
    }

    /// Breadth-first distances (in hops, ignoring edge direction) from
    /// `start` to every node; unreachable nodes get `usize::MAX`.
    pub fn undirected_bfs_distances(&self, start: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[start.index()] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for w in self.successors(v).chain(self.predecessors(v)) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Digraph<usize, ()> {
        let mut g = Digraph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    #[test]
    fn topo_order_of_chain() {
        let g = chain(5);
        let order = g.topo_order().unwrap();
        let idx: Vec<_> = order.iter().map(|n| n.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = chain(3);
        let first = g.node_ids().next().unwrap();
        let last = g.node_ids().last().unwrap();
        g.add_edge(last, first, ());
        let err = g.topo_order().unwrap_err();
        assert!(err.to_string().contains("cycle"));
        assert!(!g.is_dag());
    }

    #[test]
    fn filtered_topo_ignores_back_edges() {
        let mut g: Digraph<(), bool> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, false);
        g.add_edge(b, a, true); // back edge
        assert!(g.topo_order().is_err());
        let order = g.topo_order_filtered(|e| !*e.weight).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn levels_and_heights() {
        // diamond a→b→d, a→c→d
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let lv = g.longest_path_levels(|_| true).unwrap();
        assert_eq!(lv, vec![0, 1, 1, 2]);
        let h = g.heights(|_| true).unwrap();
        assert_eq!(h, vec![2, 1, 1, 0]);
    }

    #[test]
    fn components_of_two_islands() {
        let mut g = chain(3);
        let x = g.add_node(7);
        let y = g.add_node(8);
        g.add_edge(y, x, ()); // second island, direction irrelevant
        let comps = Components::of(&g);
        assert_eq!(comps.count(), 2);
        assert!(comps.same(x, y));
        assert!(!comps.same(x, g.node_ids().next().unwrap()));
        assert_eq!(comps.label(g.node_ids().next().unwrap()), 0);
    }

    #[test]
    fn bfs_distances_ignore_direction() {
        let g = chain(4);
        let last = g.node_ids().last().unwrap();
        let d = g.undirected_bfs_distances(last);
        assert_eq!(d, vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_graph_cases() {
        let g: Digraph<(), ()> = Digraph::new();
        assert!(g.topo_order().unwrap().is_empty());
        assert_eq!(Components::of(&g).count(), 0);
        assert!(g.is_dag());
    }
}
