//! Graphviz DOT export, used to inspect DFGs, CDGs and mappings.

use crate::Digraph;
use std::fmt::Write as _;

/// Options controlling [`Digraph::to_dot`] output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name emitted in the `digraph <name> { ... }` header.
    pub name: String,
    /// Rank direction attribute (`TB`, `LR`, ...).
    pub rankdir: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "g".to_owned(),
            rankdir: "TB".to_owned(),
        }
    }
}

impl<N, E> Digraph<N, E> {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// `node_label` and `edge_label` produce the display label for each
    /// element; an empty edge label omits the attribute.
    ///
    /// # Examples
    ///
    /// ```
    /// use panorama_graph::{Digraph, DotOptions};
    ///
    /// let mut g: Digraph<&str, ()> = Digraph::new();
    /// let a = g.add_node("load");
    /// let b = g.add_node("add");
    /// g.add_edge(a, b, ());
    /// let dot = g.to_dot(&DotOptions::default(), |_, n| n.to_string(), |_| String::new());
    /// assert!(dot.contains("load"));
    /// assert!(dot.contains("->"));
    /// ```
    pub fn to_dot(
        &self,
        options: &DotOptions,
        mut node_label: impl FnMut(crate::NodeId, &N) -> String,
        mut edge_label: impl FnMut(crate::EdgeRef<'_, E>) -> String,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {} {{", options.name);
        let _ = writeln!(out, "  rankdir={};", options.rankdir);
        for v in self.node_ids() {
            let label = node_label(v, self.node(v)).replace('"', "\\\"");
            let _ = writeln!(out, "  {v} [label=\"{label}\"];");
        }
        for e in self.edge_refs() {
            let label = edge_label(e).replace('"', "\\\"");
            if label.is_empty() {
                let _ = writeln!(out, "  {} -> {};", e.src, e.dst);
            } else {
                let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", e.src, e.dst, label);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_elements() {
        let mut g: Digraph<u32, u32> = Digraph::new();
        let a = g.add_node(10);
        let b = g.add_node(20);
        g.add_edge(a, b, 5);
        let dot = g.to_dot(
            &DotOptions {
                name: "dfg".into(),
                rankdir: "LR".into(),
            },
            |id, w| format!("{id}:{w}"),
            |e| format!("w{}", e.weight),
        );
        assert!(dot.starts_with("digraph dfg {"));
        assert!(dot.contains("rankdir=LR;"));
        assert!(dot.contains("n0 [label=\"n0:10\"];"));
        assert!(dot.contains("n0 -> n1 [label=\"w5\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g: Digraph<&str, ()> = Digraph::new();
        g.add_node("say \"hi\"");
        let dot = g.to_dot(
            &DotOptions::default(),
            |_, n| n.to_string(),
            |_| String::new(),
        );
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
