//! Strongly connected components (Tarjan), used to analyse the recurrence
//! structure of dataflow graphs: every loop-carried dependency cycle lives
//! inside one SCC of the full (data + back edge) graph.

use crate::{Digraph, NodeId};

/// Strongly-connected-component labelling of a digraph.
///
/// Produced by [`Sccs::of`]; components are numbered in *reverse
/// topological order* of the condensation (Tarjan's natural output), so
/// component 0 has no outgoing edges to other components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sccs {
    labels: Vec<u32>,
    count: usize,
}

impl Sccs {
    /// Computes the strongly connected components of `graph`.
    pub fn of<N, E>(graph: &Digraph<N, E>) -> Self {
        let n = graph.node_count();
        let mut state = TarjanState {
            index: vec![u32::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            labels: vec![u32::MAX; n],
            next_index: 0,
            count: 0,
        };
        for v in graph.node_ids() {
            if state.index[v.index()] == u32::MAX {
                state.visit(graph, v);
            }
        }
        Sccs {
            labels: state.labels,
            count: state.count,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component label of `node`.
    pub fn label(&self, node: NodeId) -> usize {
        self.labels[node.index()] as usize
    }

    /// Whether `a` and `b` are strongly connected.
    pub fn same(&self, a: NodeId, b: NodeId) -> bool {
        self.labels[a.index()] == self.labels[b.index()]
    }

    /// Members of each component with more than one node — i.e. the
    /// non-trivial cycles (self-loops are still single-node components;
    /// check those separately).
    pub fn nontrivial<N, E>(&self, graph: &Digraph<N, E>) -> Vec<Vec<NodeId>> {
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); self.count];
        for v in graph.node_ids() {
            groups[self.label(v)].push(v);
        }
        groups.retain(|g| g.len() > 1);
        groups
    }
}

struct TarjanState {
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<NodeId>,
    labels: Vec<u32>,
    next_index: u32,
    count: usize,
}

impl TarjanState {
    /// Iterative Tarjan (explicit stack; recursion would overflow on long
    /// dependence chains).
    fn visit<N, E>(&mut self, graph: &Digraph<N, E>, root: NodeId) {
        // frame: (node, next successor position)
        let mut call: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                self.index[v.index()] = self.next_index;
                self.lowlink[v.index()] = self.next_index;
                self.next_index += 1;
                self.stack.push(v);
                self.on_stack[v.index()] = true;
            }
            let succs: Vec<NodeId> = graph.successors(v).collect();
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if self.index[w.index()] == u32::MAX {
                    call.push((w, 0));
                } else if self.on_stack[w.index()] {
                    self.lowlink[v.index()] = self.lowlink[v.index()].min(self.index[w.index()]);
                }
            } else {
                // leaving v
                if self.lowlink[v.index()] == self.index[v.index()] {
                    loop {
                        let w = self.stack.pop().expect("stack holds the component");
                        self.on_stack[w.index()] = false;
                        self.labels[w.index()] = self.count as u32;
                        if w == v {
                            break;
                        }
                    }
                    self.count += 1;
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    self.lowlink[parent.index()] =
                        self.lowlink[parent.index()].min(self.lowlink[v.index()]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_has_singleton_components() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let sccs = Sccs::of(&g);
        assert_eq!(sccs.count(), 3);
        assert!(!sccs.same(a, b));
        assert!(sccs.nontrivial(&g).is_empty());
    }

    #[test]
    fn cycle_is_one_component() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        g.add_edge(n[2], n[3], ()); // tail out of the cycle
        let sccs = Sccs::of(&g);
        assert_eq!(sccs.count(), 2);
        assert!(sccs.same(n[0], n[2]));
        assert!(!sccs.same(n[0], n[3]));
        let nt = sccs.nontrivial(&g);
        assert_eq!(nt.len(), 1);
        assert_eq!(nt[0].len(), 3);
    }

    #[test]
    fn two_cycles_are_separate() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[3], n[2], ());
        let sccs = Sccs::of(&g);
        assert_eq!(sccs.count(), 2);
        assert!(sccs.same(n[0], n[1]));
        assert!(sccs.same(n[2], n[3]));
        assert!(!sccs.same(n[1], n[2]));
        assert_eq!(sccs.nontrivial(&g).len(), 2);
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let sccs = Sccs::of(&g);
        assert_eq!(sccs.count(), 1);
        assert!(sccs.nontrivial(&g).is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // iterative Tarjan must handle chains far beyond stack depth
        let mut g: Digraph<(), ()> = Digraph::new();
        let n: Vec<_> = (0..50_000).map(|_| g.add_node(())).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g.add_edge(n[49_999], n[0], ()); // one giant cycle
        let sccs = Sccs::of(&g);
        assert_eq!(sccs.count(), 1);
    }

    #[test]
    fn component_order_is_reverse_topological() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let sccs = Sccs::of(&g);
        // b (sink) finishes first → label 0
        assert_eq!(sccs.label(b), 0);
        assert_eq!(sccs.label(a), 1);
    }
}
