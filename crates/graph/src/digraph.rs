//! The core arena digraph type and its typed indices.

use std::fmt;

/// Index of a node inside a [`Digraph`].
///
/// `NodeId`s are only meaningful for the graph that produced them; they are
/// dense (`0..node_count`) and stable — nodes are never removed, only masked
/// by taking [subgraphs](Digraph::induced_subgraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node (`0..node_count`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// This is the inverse of [`NodeId::index`]; callers are responsible for
    /// using it only with indices obtained from the same graph.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an edge inside a [`Digraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Returns the dense index of this edge (`0..edge_count`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A borrowed view of one edge: endpoints plus the edge weight.
#[derive(Debug, PartialEq, Eq)]
pub struct EdgeRef<'g, E> {
    /// Identifier of the edge.
    pub id: EdgeId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge payload.
    pub weight: &'g E,
}

// Manual impls: an `EdgeRef` is a bundle of ids plus a shared reference, so
// it is copyable regardless of whether `E` itself is.
impl<E> Clone for EdgeRef<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for EdgeRef<'_, E> {}

#[derive(Debug, Clone)]
struct EdgeRecord<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

/// A directed multigraph with node payloads `N` and edge payloads `E`.
///
/// Nodes and edges are stored in arenas and addressed by [`NodeId`] /
/// [`EdgeId`]. Parallel edges and self-loops are allowed (dataflow graphs
/// use parallel edges for operations consuming the same value twice).
///
/// # Examples
///
/// ```
/// use panorama_graph::Digraph;
///
/// let mut g = Digraph::new();
/// let x = g.add_node(1.5f64);
/// let y = g.add_node(2.5f64);
/// let e = g.add_edge(x, y, "dep");
/// assert_eq!(g.edge(e).src, x);
/// assert_eq!(g[y], 2.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Digraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl<N, E> Digraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Digraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// Creates an empty graph with capacity for `nodes` nodes and `edges`
    /// edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Digraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(nodes),
            in_edges: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes in the graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges in the graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node carrying `weight` and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(weight);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a directed edge `src → dst` carrying `weight` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds for this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(
            src.index() < self.nodes.len() && dst.index() < self.nodes.len(),
            "edge endpoints must be nodes of this graph"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { src, dst, weight });
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        id
    }

    /// Borrows the payload of `node`.
    #[inline]
    pub fn node(&self, node: NodeId) -> &N {
        &self.nodes[node.index()]
    }

    /// Mutably borrows the payload of `node`.
    #[inline]
    pub fn node_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.nodes[node.index()]
    }

    /// Returns a borrowed view of `edge`.
    #[inline]
    pub fn edge(&self, edge: EdgeId) -> EdgeRef<'_, E> {
        let rec = &self.edges[edge.index()];
        EdgeRef {
            id: edge,
            src: rec.src,
            dst: rec.dst,
            weight: &rec.weight,
        }
    }

    /// Mutably borrows the payload of `edge`.
    #[inline]
    pub fn edge_weight_mut(&mut self, edge: EdgeId) -> &mut E {
        &mut self.edges[edge.index()].weight
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all edge views in insertion order.
    pub fn edge_refs(&self) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.edges.iter().enumerate().map(|(i, rec)| EdgeRef {
            id: EdgeId(i as u32),
            src: rec.src,
            dst: rec.dst,
            weight: &rec.weight,
        })
    }

    /// Iterates over the edges leaving `node`.
    pub fn outgoing(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.out_edges[node.index()].iter().map(|&e| self.edge(e))
    }

    /// Iterates over the edges entering `node`.
    pub fn incoming(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.in_edges[node.index()].iter().map(|&e| self.edge(e))
    }

    /// Iterates over the successor nodes of `node` (with multiplicity for
    /// parallel edges).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.outgoing(node).map(|e| e.dst)
    }

    /// Iterates over the predecessor nodes of `node` (with multiplicity for
    /// parallel edges).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.incoming(node).map(|e| e.src)
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node.index()].len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges[node.index()].len()
    }

    /// Total degree (in + out) of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.in_degree(node) + self.out_degree(node)
    }

    /// Maximum total degree over all nodes, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.node_ids().map(|n| self.degree(n)).max().unwrap_or(0)
    }

    /// Applies `f` to every node payload, producing a graph with the same
    /// shape and new node weights.
    pub fn map_nodes<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> Digraph<M, E>
    where
        E: Clone,
    {
        Digraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| f(NodeId(i as u32), n))
                .collect(),
            edges: self.edges.clone(),
            out_edges: self.out_edges.clone(),
            in_edges: self.in_edges.clone(),
        }
    }

    /// Builds the subgraph induced by `keep`, renumbering nodes densely.
    ///
    /// Returns the subgraph plus the mapping from old node ids to new ones
    /// (`None` for dropped nodes).
    pub fn induced_subgraph(
        &self,
        keep: impl Fn(NodeId) -> bool,
    ) -> (Digraph<N, E>, Vec<Option<NodeId>>)
    where
        N: Clone,
        E: Clone,
    {
        let mut remap: Vec<Option<NodeId>> = vec![None; self.node_count()];
        let mut sub = Digraph::new();
        for n in self.node_ids() {
            if keep(n) {
                remap[n.index()] = Some(sub.add_node(self.node(n).clone()));
            }
        }
        for e in self.edge_refs() {
            if let (Some(s), Some(d)) = (remap[e.src.index()], remap[e.dst.index()]) {
                sub.add_edge(s, d, e.weight.clone());
            }
        }
        (sub, remap)
    }

    /// Returns the graph with every edge reversed (payloads preserved).
    pub fn reversed(&self) -> Digraph<N, E>
    where
        N: Clone,
        E: Clone,
    {
        let mut g = Digraph::with_capacity(self.node_count(), self.edge_count());
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        for e in self.edge_refs() {
            g.add_edge(e.dst, e.src, e.weight.clone());
        }
        g
    }
}

impl<N, E> std::ops::Index<NodeId> for Digraph<N, E> {
    type Output = N;
    #[inline]
    fn index(&self, index: NodeId) -> &N {
        self.node(index)
    }
}

impl<N, E> std::ops::IndexMut<NodeId> for Digraph<N, E> {
    #[inline]
    fn index_mut(&mut self, index: NodeId) -> &mut N {
        self.node_mut(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Digraph<&'static str, ()>, [NodeId; 4]) {
        let mut g = Digraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, [a, b, c, d]) = diamond();
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<_> = g.predecessors(d).collect();
        assert_eq!(pred, vec![b, c]);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g: Digraph<(), u8> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        g.add_edge(b, b, 3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.degree(b), 4); // two in from a, one self in+out
    }

    #[test]
    fn index_operators() {
        let (mut g, [a, ..]) = diamond();
        assert_eq!(g[a], "a");
        g[a] = "z";
        assert_eq!(g[a], "z");
    }

    #[test]
    fn edge_refs_are_in_insertion_order() {
        let (g, [a, ..]) = diamond();
        let firsts: Vec<_> = g.edge_refs().map(|e| e.src).collect();
        assert_eq!(firsts[0], a);
        assert_eq!(g.edge_refs().count(), 4);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let (g, [a, b, _c, d]) = diamond();
        let (sub, remap) = g.induced_subgraph(|n| n != b);
        assert_eq!(sub.node_count(), 3);
        // only a→c and c→d survive
        assert_eq!(sub.edge_count(), 2);
        assert!(remap[b.index()].is_none());
        assert_eq!(remap[a.index()], Some(NodeId(0)));
        assert_eq!(remap[d.index()], Some(NodeId(2)));
    }

    #[test]
    fn reversed_flips_edges() {
        let (g, [a, b, ..]) = diamond();
        let r = g.reversed();
        assert_eq!(r.successors(b).collect::<Vec<_>>(), vec![a]);
        assert_eq!(r.in_degree(a), 2); // a gains the two edges it emitted
    }

    #[test]
    fn map_nodes_preserves_shape() {
        let (g, _) = diamond();
        let m = g.map_nodes(|id, s| (id.index(), s.len()));
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.edge_count(), 4);
        assert_eq!(*m.node(NodeId(0)), (0, 1));
    }

    #[test]
    #[should_panic(expected = "endpoints")]
    fn foreign_node_panics() {
        let (mut g, _) = diamond();
        let bogus = NodeId(99);
        g.add_edge(bogus, NodeId(0), ());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(7).to_string(), "e7");
    }
}
