//! Adjacency-matrix view of a digraph, consumed by spectral clustering.

use crate::Digraph;

/// Dense symmetric adjacency matrix of a graph (direction ignored),
/// with entry `(i, j)` counting edges between nodes `i` and `j`.
///
/// Spectral clustering treats the DFG as a similarity graph, so parallel
/// edges accumulate weight and self-loops are dropped (they do not affect
/// the graph Laplacian's cut structure).
#[derive(Debug, Clone, PartialEq)]
pub struct AdjacencyMatrix {
    n: usize,
    data: Vec<f64>,
}

impl AdjacencyMatrix {
    /// Builds the symmetric adjacency matrix of `graph`.
    pub fn symmetric<N, E>(graph: &Digraph<N, E>) -> Self {
        let n = graph.node_count();
        let mut data = vec![0.0; n * n];
        for e in graph.edge_refs() {
            let (i, j) = (e.src.index(), e.dst.index());
            if i == j {
                continue;
            }
            data[i * n + j] += 1.0;
            data[j * n + i] += 1.0;
        }
        AdjacencyMatrix { n, data }
    }

    /// Matrix dimension (number of graph nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the empty (0×0) matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    /// Weighted degree of node `row` (sum of its adjacency row).
    pub fn degree(&self, row: usize) -> f64 {
        self.data[row * self.n..(row + 1) * self.n].iter().sum()
    }

    /// The unnormalised graph Laplacian `L = D − A` as a dense row-major
    /// buffer, suitable for the symmetric eigensolver.
    pub fn laplacian(&self) -> Vec<f64> {
        let n = self.n;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            let d = self.degree(i);
            for j in 0..n {
                l[i * n + j] = if i == j {
                    d - self.get(i, j)
                } else {
                    -self.get(i, j)
                };
            }
        }
        l
    }

    /// The symmetric normalised Laplacian `L_sym = I − D^{-1/2} A D^{-1/2}`
    /// (isolated nodes keep an identity row), used by Ng–Jordan–Weiss
    /// normalised spectral clustering.
    pub fn normalized_laplacian(&self) -> Vec<f64> {
        let n = self.n;
        let inv_sqrt: Vec<f64> = (0..n)
            .map(|i| {
                let d = self.degree(i);
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let a = self.get(i, j) * inv_sqrt[i] * inv_sqrt[j];
                l[i * n + j] = if i == j { 1.0 - a } else { -a };
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_counts_parallel_edges() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let m = AdjacencyMatrix::symmetric(&g);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.degree(0), 3.0);
    }

    #[test]
    fn self_loops_dropped() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let m = AdjacencyMatrix::symmetric(&g);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        // triangle plus a pendant
        let mut g: Digraph<(), ()> = Digraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[2], ids[0], ());
        g.add_edge(ids[2], ids[3], ());
        let m = AdjacencyMatrix::symmetric(&g);
        let l = m.laplacian();
        for i in 0..4 {
            let row_sum: f64 = l[i * 4..(i + 1) * 4].iter().sum();
            assert!(row_sum.abs() < 1e-12);
        }
        // degree of node 2 is 3
        assert_eq!(l[2 * 4 + 2], 3.0);
    }

    #[test]
    fn normalized_laplacian_has_unit_diagonal_and_bounded_spectrum() {
        let mut g: Digraph<(), ()> = Digraph::new();
        let ids: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        let m = AdjacencyMatrix::symmetric(&g);
        let l = m.normalized_laplacian();
        for i in 0..3 {
            assert!((l[i * 3 + i] - 1.0).abs() < 1e-12);
        }
        // symmetric
        for i in 0..3 {
            for j in 0..3 {
                assert!((l[i * 3 + j] - l[j * 3 + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn normalized_laplacian_isolated_node() {
        let mut g: Digraph<(), ()> = Digraph::new();
        g.add_node(());
        let m = AdjacencyMatrix::symmetric(&g);
        let l = m.normalized_laplacian();
        assert_eq!(l, vec![1.0]);
    }

    #[test]
    fn empty_matrix() {
        let g: Digraph<(), ()> = Digraph::new();
        let m = AdjacencyMatrix::symmetric(&g);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.laplacian().is_empty());
    }
}
