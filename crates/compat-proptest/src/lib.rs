//! Offline drop-in subset of the
//! [`proptest`](https://crates.io/crates/proptest) API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external `proptest` dev-dependency is replaced by this
//! local implementation of the surface the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`arg in strategy`);
//! * [`Strategy`] implementations for integer ranges, string
//!   character-class patterns (`"[a-z0-9]{0,20}"`), [`collection::vec`]
//!   and [`any`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`] to control the number of cases.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the ordinary assertion message. Case generation is deterministic
//! (derived from the case index), so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-block configuration consumed by [`proptest!`]'s
/// `#![proptest_config(...)]` inner attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test-case RNG (SplitMix64 over the case index).
pub mod test_runner {
    /// The RNG handed to strategies while generating one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th iteration of a property test.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of random values for one [`proptest!`] argument.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

/// String strategies: a `&str` is interpreted as a character-class pattern
/// of the form `[chars]{lo,hi}` (a subset of proptest's regex strategies —
/// the subset this workspace's tests use). Unparseable patterns fall back
/// to short printable-ASCII strings.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect()
            }
            None => {
                let len = rng.below(32) as usize;
                (0..len)
                    .map(|_| (b' ' + rng.below(95) as u8) as char)
                    .collect()
            }
        }
    }
}

/// Parses `[a-z0-9 #\n]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = rest.split_at(close);
    let tail = tail.strip_prefix(']')?;
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo > hi {
        return None;
    }

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let start = if c == '\\' {
            match chars.next()? {
                'n' => '\n',
                't' => '\t',
                other => other,
            }
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            let mut look = chars.clone();
            look.next(); // consume '-'
            if let Some(&end) = look.peek() {
                if end != ']' {
                    chars = look;
                    chars.next();
                    for code in start as u32..=end as u32 {
                        alphabet.extend(char::from_u32(code));
                    }
                    continue;
                }
            }
        }
        alphabet.push(start);
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy generating `Vec`s; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// inside the block runs its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn class_pattern_parses() {
        let (alphabet, lo, hi) = super::parse_class_pattern("[a-c0-1 #\\n]{0,20}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 20);
        for c in ['a', 'b', 'c', '0', '1', ' ', '#', '\n'] {
            assert!(alphabet.contains(&c), "missing {c:?}");
        }
        assert_eq!(alphabet.len(), 8);
    }

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..50 {
            let s = Strategy::sample(&"[a-z]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies to arguments.
        #[test]
        fn macro_generates_in_range(x in 2usize..9, v in crate::collection::vec(-3i8..4, 0..6), b in any::<bool>()) {
            prop_assert!((2..9).contains(&x));
            prop_assert!(v.len() < 6);
            for e in &v {
                prop_assert!((-3..4).contains(e));
            }
            let _ = b;
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
