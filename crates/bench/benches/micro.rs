//! Criterion micro-benchmarks of the computational substrates: the
//! symmetric eigensolver, the MILP solver, spectral partitioning and one
//! PathFinder-backed mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use panorama_arch::{Cgra, CgraConfig};
use panorama_cluster::{SpectralClustering, SpectralConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_ilp::{Cmp, LinExpr, Model, Sense};
use panorama_linalg::{DMatrix, SymmetricEigen};
use panorama_mapper::{LowerLevelMapper, SprMapper, UltraFastMapper};

fn bench_eigen(c: &mut Criterion) {
    // ring Laplacian, n = 96
    let n = 96;
    let mut l = DMatrix::zeros(n, n);
    for i in 0..n {
        l[(i, i)] = 2.0;
        let j = (i + 1) % n;
        l[(i, j)] = -1.0;
        l[(j, i)] = -1.0;
    }
    c.bench_function("jacobi_eigen_96", |b| {
        b.iter(|| SymmetricEigen::new(std::hint::black_box(&l)).unwrap());
    });
}

fn bench_ilp(c: &mut Criterion) {
    c.bench_function("ilp_assignment_5x5", |b| {
        b.iter(|| {
            let mut m = Model::new(Sense::Minimize);
            let mut vars = Vec::new();
            for i in 0..5 {
                let row: Vec<_> = (0..5).map(|j| m.bool_var(format!("x{i}{j}"))).collect();
                vars.push(row);
            }
            for (i, row) in vars.iter().enumerate() {
                m.add_constraint(LinExpr::sum(row.iter().map(|&v| (1.0, v))), Cmp::Eq, 1.0);
                m.add_constraint(
                    LinExpr::sum((0..5).map(|j| (1.0, vars[j][i]))),
                    Cmp::Eq,
                    1.0,
                );
            }
            m.set_objective(LinExpr::sum(
                (0..25).map(|k| (((k * 7 + 3) % 11) as f64, vars[k / 5][k % 5])),
            ));
            m.solve().unwrap()
        });
    });
}

fn bench_spectral(c: &mut Criterion) {
    let dfg = kernels::generate(KernelId::IdctCols, KernelScale::Scaled);
    c.bench_function("spectral_partition_idctcols_scaled", |b| {
        b.iter(|| {
            let sc = SpectralClustering::new(std::hint::black_box(&dfg)).unwrap();
            sc.partition(6, &SpectralConfig::default()).unwrap()
        });
    });
}

fn bench_mapping(c: &mut Criterion) {
    let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Tiny);
    c.bench_function("spr_map_cordic_tiny_4x4", |b| {
        b.iter(|| SprMapper::default().map(&dfg, &cgra, None).unwrap());
    });
    c.bench_function("ultrafast_map_cordic_tiny_4x4", |b| {
        b.iter(|| UltraFastMapper::default().map(&dfg, &cgra, None).unwrap());
    });
}

fn bench_scatter(c: &mut Criterion) {
    use panorama_cluster::{explore_partitions, top_balanced, Cdg};
    use panorama_place::{map_clusters, ScatterConfig};
    let dfg = kernels::generate(KernelId::Edn, KernelScale::Scaled);
    let parts = explore_partitions(&dfg, 2, 8, &SpectralConfig::default()).unwrap();
    let best = top_balanced(&parts, 1)[0].1.clone();
    c.bench_function("cluster_mapping_edn_scaled_2x2", |b| {
        b.iter(|| {
            let cdg = Cdg::new(std::hint::black_box(&dfg), &best);
            map_clusters(&cdg, 2, 2, &ScatterConfig::default()).unwrap()
        });
    });
}

fn bench_kernel_generation(c: &mut Criterion) {
    c.bench_function("generate_all_kernels_scaled", |b| {
        b.iter(|| {
            for id in panorama_dfg::KernelId::ALL {
                std::hint::black_box(kernels::generate(id, KernelScale::Scaled));
            }
        });
    });
}

fn bench_mrrg(c: &mut Criterion) {
    let cgra = Cgra::new(CgraConfig::paper_16x16()).unwrap();
    c.bench_function("mrrg_build_16x16_ii8", |b| {
        b.iter(|| std::hint::black_box(&cgra).mrrg(8));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_eigen, bench_ilp, bench_spectral, bench_mapping,
              bench_scatter, bench_kernel_generation, bench_mrrg
}
criterion_main!(benches);
