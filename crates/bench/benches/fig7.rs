//! `cargo bench -p panorama-bench --bench fig7` regenerates this artifact.

fn main() {
    println!("{}", panorama_bench::fig7());
}
