//! `cargo bench -p panorama-bench --bench table1a` regenerates this artifact.

fn main() {
    println!("{}", panorama_bench::table1a());
}
