//! `cargo bench -p panorama-bench --bench fig5` regenerates this artifact.

fn main() {
    println!("{}", panorama_bench::fig5());
}
