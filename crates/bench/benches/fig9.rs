//! `cargo bench -p panorama-bench --bench fig9` regenerates this artifact.

fn main() {
    println!("{}", panorama_bench::fig9());
}
