//! `cargo bench -p panorama-bench --bench table1b` regenerates this artifact.

fn main() {
    println!("{}", panorama_bench::table1b());
}
