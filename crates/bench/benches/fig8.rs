//! `cargo bench -p panorama-bench --bench fig8` regenerates this artifact.

fn main() {
    println!("{}", panorama_bench::fig8());
}
