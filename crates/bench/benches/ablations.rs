//! Design-choice ablations (DESIGN.md §6).

fn main() {
    println!("{}", panorama_bench::ablations::fixed_k());
    println!("{}", panorama_bench::ablations::top_partitions());
    println!("{}", panorama_bench::ablations::restriction());
    println!("{}", panorama_bench::ablations::laplacian());
}
