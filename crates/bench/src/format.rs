//! Minimal fixed-width table rendering for experiment output.

/// A simple left-aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (c, width) in widths.iter_mut().enumerate() {
                let w = row.get(c).map_or(0, std::string::String::len);
                if w > *width {
                    *width = w;
                }
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let mut line = String::new();
        for (h, w) in self.header.iter().zip(&widths) {
            line.push_str(&format!("{h:<w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (c, &w) in widths.iter().enumerate() {
                let cell = row.get(c).map_or("", String::as_str);
                line.push_str(&format!("{cell:<w$}  "));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.row(&["xxxx".into(), "1".into()]);
        t.row(&["y".into(), "22".into()]);
        let s = t.render();
        assert!(s.starts_with("T\n"));
        assert!(s.contains("a     long_header"));
        assert!(s.contains("xxxx  1"));
        assert!(s.contains("y     22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }
}
