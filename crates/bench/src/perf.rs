//! The `panorama bench` performance harness.
//!
//! Compiles the full 12-kernel suite on two architecture presets, twice:
//! once with the requested worker-thread count (all kernel × candidate
//! work shared on one [`BatchExecutor`] pool), once fully sequential
//! (`threads = 1` everywhere). It records per-kernel wall-clock and
//! achieved II for both phases, checks the two phases produced
//! bit-identical mappings (the portfolio's determinism guarantee, end to
//! end), and reports the suite-level speedup.
//!
//! With the SPR\* mapper the harness additionally runs a **delta-replay
//! scenario**: every suite kernel is perturbed by one extra op, the batch
//! phase replays the perturbed kernels through a [`WarmStartCache`] seeded
//! with the suite's winning mappings (modelling the serve daemon's warm
//! remap tier), while the sequential phase pays a full cold compile for
//! each. Every warm mapping is re-verified and cross-checked against the
//! cycle-accurate simulator.
//!
//! The report serialises to JSON (schema below) so CI can pin a baseline
//! (`BENCH_PR7.json`) and fail on II drift, per-kernel wall-clock ceiling
//! breaches, a suite speedup below 1.0, or a warm-start replay that never
//! hit the cache — see [`BenchReport::check_against_baseline`].
//!
//! ```json
//! {
//!   "schema": "panorama-bench-v1",
//!   "mapper": "SPR*",
//!   "threads": 4,
//!   "suite_wall_seconds": 14.9,
//!   "suite_wall_seconds_single": 24.6,
//!   "speedup": 1.65,
//!   "mrrg_cache": {"hits": 310, "misses": 22, "evictions": 0},
//!   "kernels": [
//!     {"kernel": "fir", "preset": "4x4", "ii": 3, "mii": 2,
//!      "wall_seconds": 0.04, "wall_seconds_single": 0.09,
//!      "speedup": 2.250, "identical": true}
//!   ],
//!   "warm_start": {
//!     "hits": 24, "misses": 0, "records": 48,
//!     "wall_seconds": 0.8, "wall_seconds_cold": 10.4,
//!     "replays": [
//!       {"kernel": "fir", "preset": "4x4", "ii": 3, "ii_cold": 3,
//!        "verified": true, "wall_seconds": 0.01, "wall_seconds_cold": 0.1}
//!     ]
//!   }
//! }
//! ```

use panorama::{BatchExecutor, CompileReport, Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, Dep, Dfg, DfgBuilder, KernelId, KernelScale, OpKind};
use panorama_mapper::{
    LowerLevelMapper, SatMapper, SprConfig, SprMapper, UltraFastMapper, WarmStartCache,
};
use panorama_trace::json::{self, Json};
use panorama_trace::{phase_totals, RecordingSink, TraceEvent, TraceReport, Tracer};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Which lower-level mapper the harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchMapper {
    /// The Ultra-Fast greedy mapper (fast enough for CI smoke runs).
    #[default]
    UltraFast,
    /// SPR\* with a per-mapping time budget (representative, slower).
    Spr,
    /// The CDCL SAT-based mapper. Runs the 4×4/tiny preset only — the
    /// CNF encoding grows too fast for scaled kernels on the 8×8.
    Sat,
}

impl BenchMapper {
    /// Display name matching the mapper's own `name()`.
    pub fn name(self) -> &'static str {
        match self {
            BenchMapper::UltraFast => "Ultra-Fast",
            BenchMapper::Spr => "SPR*",
            BenchMapper::Sat => "SAT",
        }
    }
}

/// Harness options.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Worker threads for the parallel phase (`0` = one per core).
    pub threads: usize,
    /// Lower-level mapper.
    pub mapper: BenchMapper,
    /// Per-SPR-mapping wall-clock budget.
    pub spr_budget: Duration,
    /// Trace the parallel-phase compiles: per-kernel phase summaries land
    /// in [`KernelResult::trace_phases`] and the suite timeline is
    /// exportable via [`BenchReport::to_trace_report`].
    pub trace: bool,
    /// Run the pre-mapping DFG optimizer before every compile. Off by
    /// default so checked-in baselines keep their exact IIs.
    pub analyze: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            threads: 0,
            mapper: BenchMapper::UltraFast,
            spr_budget: Duration::from_secs(60),
            trace: false,
            analyze: false,
        }
    }
}

/// One kernel × preset measurement.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (paper Table 1 naming).
    pub kernel: String,
    /// Architecture preset (`"4x4"` / `"8x8"`).
    pub preset: String,
    /// Achieved initiation interval (identical across phases by
    /// construction; checked).
    pub ii: usize,
    /// Static minimum II.
    pub mii: usize,
    /// Wall-clock of the parallel-phase compile, seconds.
    pub wall_seconds: f64,
    /// Wall-clock of the sequential-phase compile, seconds.
    pub wall_seconds_single: f64,
    /// `wall_seconds_single / wall_seconds` for this kernel alone.
    pub speedup: f64,
    /// Whether the two phases produced bit-identical mappings and plans.
    pub identical: bool,
    /// Per-phase `(phase, event count, total ns)` rows from tracing the
    /// parallel-phase compile; empty when tracing was off.
    pub trace_phases: Vec<(String, u64, u64)>,
}

/// One perturbed-kernel replay: warm (cache-seeded direct remap) versus
/// cold (full pipeline compile from scratch).
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Kernel name the perturbed graph was derived from.
    pub kernel: String,
    /// Architecture preset.
    pub preset: String,
    /// II achieved by the warm remap.
    pub ii: usize,
    /// II achieved by the cold full compile.
    pub ii_cold: usize,
    /// Whether the warm mapping passed [`panorama_mapper::Mapping::verify`]
    /// *and* the cycle-accurate simulator cross-check.
    pub verified: bool,
    /// Warm remap wall-clock, seconds.
    pub wall_seconds: f64,
    /// Cold full-compile wall-clock, seconds.
    pub wall_seconds_cold: f64,
}

/// Aggregate results of the delta-replay scenario (SPR\* runs only).
#[derive(Debug, Clone)]
pub struct WarmReplay {
    /// Warm-cache lookup hits across the replay.
    pub hits: u64,
    /// Warm-cache lookup misses across the replay.
    pub misses: u64,
    /// Mappings recorded into the cache (suite winners + replay results).
    pub records: u64,
    /// Total warm-replay wall-clock, seconds (part of the batch phase).
    pub wall_seconds: f64,
    /// Total cold-replay wall-clock, seconds (part of the sequential
    /// phase).
    pub wall_seconds_cold: f64,
    /// Per-kernel replay rows, in suite order.
    pub replays: Vec<ReplayRow>,
}

/// The full suite measurement.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Mapper driven by the harness.
    pub mapper: &'static str,
    /// Effective worker-thread count of the parallel phase.
    pub threads: usize,
    /// Parallel-phase suite wall-clock (batch compiles + warm replay),
    /// seconds.
    pub suite_wall_seconds: f64,
    /// Sequential-phase suite wall-clock (cold compiles + cold replay),
    /// seconds.
    pub suite_wall_seconds_single: f64,
    /// `suite_wall_seconds_single / suite_wall_seconds`.
    pub speedup: f64,
    /// MRRG cache hits across both phases (the per-preset caches are
    /// shared, so this covers every compile of the run).
    pub mrrg_hits: u64,
    /// MRRG cache misses across both phases.
    pub mrrg_misses: u64,
    /// MRRG cache evictions across both phases.
    pub mrrg_evictions: u64,
    /// Per-kernel rows, in suite order.
    pub kernels: Vec<KernelResult>,
    /// Delta-replay results; `None` unless the suite ran SPR\*.
    pub warm: Option<WarmReplay>,
}

/// The two architecture presets the suite runs on: a 4×4 with tiny
/// kernels and the scaled 8×8 with ~1/3-paper-size kernels. The SAT
/// mapper runs the 4×4/tiny preset only (scaled kernels exceed its CNF
/// budget by design).
fn presets(mapper: BenchMapper) -> Vec<(&'static str, CgraConfig, KernelScale)> {
    let mut presets = vec![("4x4", CgraConfig::small_4x4(), KernelScale::Tiny)];
    if mapper != BenchMapper::Sat {
        presets.push(("8x8", CgraConfig::scaled_8x8(), KernelScale::Scaled));
    }
    presets
}

/// The suite's two mapper instances, built once and shared by every job
/// (batch compiles borrow them for the executor scope's lifetime).
struct Mappers {
    ultrafast: UltraFastMapper,
    spr: SprMapper,
    sat: SatMapper,
}

fn spr_config(options: &BenchOptions) -> SprConfig {
    SprConfig {
        time_budget: Some(options.spr_budget),
        ..SprConfig::default()
    }
}

impl Mappers {
    fn new(options: &BenchOptions) -> Self {
        Mappers {
            ultrafast: UltraFastMapper::default(),
            spr: SprMapper::new(spr_config(options)),
            sat: SatMapper::default(),
        }
    }
}

/// One finished compile: the report, its wall-clock seconds and the
/// per-phase trace summaries (`(phase, count, total_ns)`, empty untraced).
type JobResult = (CompileReport, f64, Vec<(String, u64, u64)>);

fn compile_job<'env>(
    dfg: &Dfg,
    cgra: &Cgra,
    threads: usize,
    options: &BenchOptions,
    trace: bool,
    mappers: &'env Mappers,
    exec: Option<&BatchExecutor<'env>>,
) -> Result<JobResult, String> {
    let compiler = Panorama::new(PanoramaConfig {
        threads,
        analyze: options.analyze.then(panorama::AnalyzeConfig::default),
        ..PanoramaConfig::default()
    });
    let sink = trace.then(RecordingSink::shared);
    let tracer = match &sink {
        Some(sink) => Tracer::new(sink.clone()),
        None => Tracer::disabled(),
    };
    let t = Instant::now();
    let report = match (options.mapper, exec) {
        (BenchMapper::UltraFast, Some(exec)) => {
            compiler.compile_batch_traced(exec, dfg, cgra, &mappers.ultrafast, &tracer, None)
        }
        (BenchMapper::UltraFast, None) => {
            compiler.compile_traced(dfg, cgra, &mappers.ultrafast, &tracer)
        }
        (BenchMapper::Spr, Some(exec)) => {
            compiler.compile_batch_traced(exec, dfg, cgra, &mappers.spr, &tracer, None)
        }
        (BenchMapper::Spr, None) => compiler.compile_traced(dfg, cgra, &mappers.spr, &tracer),
        (BenchMapper::Sat, Some(exec)) => {
            compiler.compile_batch_traced(exec, dfg, cgra, &mappers.sat, &tracer, None)
        }
        (BenchMapper::Sat, None) => compiler.compile_traced(dfg, cgra, &mappers.sat, &tracer),
    };
    let wall = t.elapsed().as_secs_f64();
    let phases = sink.map_or_else(Vec::new, |sink| {
        phase_totals(&sink.take())
            .into_iter()
            .map(|(phase, count, total_ns)| (phase.to_string(), count, total_ns))
            .collect()
    });
    report
        .map(|r| (r, wall, phases))
        .map_err(|e| format!("{} on {}: {e}", dfg.name(), cgra.config().rows))
}

/// Rebuilds `dfg` with one extra `Add` consuming the first op's value —
/// the smallest structural delta the warm-start cache must tolerate
/// (kinds-length diff 1 + two added edges, well under the edit-distance
/// threshold for every suite kernel).
fn perturb(dfg: &Dfg) -> Dfg {
    let mut b = DfgBuilder::new(format!("{}_delta", dfg.name()));
    let copies: Vec<panorama_dfg::OpId> = dfg
        .op_ids()
        .map(|op| b.push_op(dfg.op(op).clone()))
        .collect();
    for e in dfg.deps() {
        let (src, dst) = (copies[e.src.index()], copies[e.dst.index()]);
        match *e.weight {
            Dep::Data => b.data(src, dst),
            Dep::Back { distance } => b.back(src, dst, distance),
        }
    }
    let extra = b.op(OpKind::Add, "warm_delta");
    b.data(copies[0], extra);
    b.data(copies[0], extra);
    b.build().expect("perturbed suite kernel stays well-formed")
}

/// Two compile reports describe bit-identical results: same II and
/// per-op placement/schedule, and the same winning partition labels.
fn reports_identical(a: &CompileReport, b: &CompileReport, dfg_ops: usize) -> bool {
    let (ma, mb) = (a.mapping(), b.mapping());
    if ma.ii() != mb.ii() {
        return false;
    }
    // With the analyzer on, both phases mapped the (deterministically)
    // optimized graph — compare over its op count, not the input's.
    let dfg_ops = a.analyzed_dfg().map_or(dfg_ops, panorama_dfg::Dfg::num_ops);
    if a.analyzed_dfg().map(panorama_dfg::Dfg::num_ops)
        != b.analyzed_dfg().map(panorama_dfg::Dfg::num_ops)
    {
        return false;
    }
    let ops_match = (0..dfg_ops).all(|i| {
        let op = panorama_dfg::OpId::from_index(i);
        ma.pe_of(op) == mb.pe_of(op) && ma.time_of(op) == mb.time_of(op)
    });
    let plans_match = match (a.plan(), b.plan()) {
        (Some(pa), Some(pb)) => pa.partition().labels() == pb.partition().labels(),
        (None, None) => true,
        _ => false,
    };
    ops_match && plans_match
}

/// Runs the suite. See the module docs for what is measured.
///
/// # Errors
///
/// Returns a human-readable message when any kernel fails to compile in
/// either phase, or when a warm replay fails to map.
pub fn run(options: &BenchOptions) -> Result<BenchReport, String> {
    let presets = presets(options.mapper);
    let jobs: Vec<(KernelId, usize)> = KernelId::ALL
        .iter()
        .flat_map(|&k| (0..presets.len()).map(move |p| (k, p)))
        .collect();
    let dfgs: Vec<Dfg> = jobs
        .iter()
        .map(|&(k, p)| kernels::generate(k, presets[p].2))
        .collect();
    let cgras: Vec<Cgra> = presets
        .iter()
        .map(|(_, config, _)| Cgra::new(config.clone()).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let threads = crate::pool_threads(options.threads, jobs.len());
    let mappers = Mappers::new(options);

    // Delta-replay scenario (SPR* only): perturbed copies of every suite
    // kernel, remapped warm in the batch phase and cold in the sequential
    // phase. The warm mapper's cache is seeded from the batch winners.
    let replay: Option<Vec<Dfg>> =
        (options.mapper == BenchMapper::Spr).then(|| dfgs.iter().map(perturb).collect());
    let warm_cache = WarmStartCache::default();
    let warm_mapper = SprMapper::new(spr_config(options)).with_warm_cache(warm_cache.clone());

    // batch phase: every kernel's candidate portfolio shares ONE executor
    // pool, so the suite is never oversubscribed however many kernels and
    // candidates are in flight
    let t_par = Instant::now();
    let parallel: Vec<Result<JobResult, String>> = BatchExecutor::scope(threads, |exec| {
        exec.run_batch(jobs.len(), |exec, j| {
            let (_, p) = jobs[j];
            compile_job(
                &dfgs[j],
                &cgras[p],
                threads,
                options,
                options.trace,
                &mappers,
                Some(exec),
            )
        })
    });
    // Warm replay, still on the batch phase's clock: record the winners,
    // then remap each perturbed kernel directly (no divide phase — this
    // models the serve daemon's warm remap tier). Sequential on purpose:
    // cache contents and hit counters stay deterministic at any thread
    // count.
    let mut warm_results: Vec<(panorama_mapper::Mapping, f64)> = Vec::new();
    if let Some(deltas) = &replay {
        for (j, result) in parallel.iter().enumerate() {
            if let Ok((report, _, _)) = result {
                let (_, p) = jobs[j];
                let recorded = report.analyzed_dfg().unwrap_or(&dfgs[j]);
                warm_cache.record(recorded, &cgras[p], report.mapping());
            }
        }
        for (j, delta) in deltas.iter().enumerate() {
            let (kernel, p) = jobs[j];
            let t = Instant::now();
            let mapping = warm_mapper
                .map(delta, &cgras[p], None)
                .map_err(|e| format!("warm replay of {kernel}/{}: {e}", presets[p].0))?;
            warm_results.push((mapping, t.elapsed().as_secs_f64()));
        }
    }
    let suite_wall_seconds = t_par.elapsed().as_secs_f64();

    // sequential phase: one job at a time, portfolio pinned to one thread,
    // never traced — its wall-clock feeds the speedup denominator; the
    // cold replay pays a full from-scratch pipeline compile per delta
    let t_seq = Instant::now();
    let sequential: Vec<Result<JobResult, String>> = jobs
        .iter()
        .enumerate()
        .map(|(j, &(_, p))| compile_job(&dfgs[j], &cgras[p], 1, options, false, &mappers, None))
        .collect();
    let mut cold_results: Vec<(CompileReport, f64)> = Vec::new();
    if let Some(deltas) = &replay {
        for (j, delta) in deltas.iter().enumerate() {
            let (kernel, p) = jobs[j];
            let (report, wall, _) =
                compile_job(delta, &cgras[p], 1, options, false, &mappers, None)
                    .map_err(|e| format!("cold replay of {kernel}/{}: {e}", presets[p].0))?;
            cold_results.push((report, wall));
        }
    }
    let suite_wall_seconds_single = t_seq.elapsed().as_secs_f64();

    let mut rows = Vec::with_capacity(jobs.len());
    for (j, &(kernel, p)) in jobs.iter().enumerate() {
        let (par_report, par_wall, trace_phases) = parallel[j].clone()?;
        let (seq_report, seq_wall, _) = sequential[j].clone()?;
        rows.push(KernelResult {
            kernel: kernel.to_string(),
            preset: presets[p].0.to_string(),
            ii: par_report.mapping().ii(),
            mii: par_report.mapping().mii(),
            wall_seconds: par_wall,
            wall_seconds_single: seq_wall,
            speedup: if par_wall > 0.0 {
                seq_wall / par_wall
            } else {
                0.0
            },
            identical: reports_identical(&par_report, &seq_report, dfgs[j].num_ops()),
            trace_phases,
        });
    }

    // off the clock: verify every warm mapping independently and against
    // the cycle-accurate simulator (4 pipelined iterations)
    let warm = match &replay {
        None => None,
        Some(deltas) => {
            let mut replays = Vec::with_capacity(deltas.len());
            let (mut warm_wall, mut cold_wall) = (0.0, 0.0);
            for (j, delta) in deltas.iter().enumerate() {
                let (kernel, p) = jobs[j];
                let (mapping, wall) = &warm_results[j];
                let (cold_report, cold_sec) = &cold_results[j];
                let verified = mapping.verify(delta, &cgras[p]).is_ok()
                    && panorama::sim::simulate(delta, &cgras[p], mapping, 4).is_ok();
                warm_wall += wall;
                cold_wall += cold_sec;
                replays.push(ReplayRow {
                    kernel: kernel.to_string(),
                    preset: presets[p].0.to_string(),
                    ii: mapping.ii(),
                    ii_cold: cold_report.mapping().ii(),
                    verified,
                    wall_seconds: *wall,
                    wall_seconds_cold: *cold_sec,
                });
            }
            Some(WarmReplay {
                hits: warm_cache.hits(),
                misses: warm_cache.misses(),
                records: warm_cache.records(),
                wall_seconds: warm_wall,
                wall_seconds_cold: cold_wall,
                replays,
            })
        }
    };

    let (mut mrrg_hits, mut mrrg_misses, mut mrrg_evictions) = (0, 0, 0);
    for cgra in &cgras {
        let c = cgra.mrrg_cache();
        mrrg_hits += c.hits();
        mrrg_misses += c.misses();
        mrrg_evictions += c.evictions();
    }

    let speedup = if suite_wall_seconds > 0.0 {
        suite_wall_seconds_single / suite_wall_seconds
    } else {
        0.0
    };
    Ok(BenchReport {
        mapper: options.mapper.name(),
        threads,
        suite_wall_seconds,
        suite_wall_seconds_single,
        speedup,
        mrrg_hits,
        mrrg_misses,
        mrrg_evictions,
        kernels: rows,
        warm,
    })
}

impl BenchReport {
    /// Serialises the report with stable field order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"panorama-bench-v1\",\n");
        let _ = writeln!(out, "  \"mapper\": \"{}\",", json::escape(self.mapper));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(
            out,
            "  \"suite_wall_seconds\": {:.6},",
            self.suite_wall_seconds
        );
        let _ = writeln!(
            out,
            "  \"suite_wall_seconds_single\": {:.6},",
            self.suite_wall_seconds_single
        );
        let _ = writeln!(out, "  \"speedup\": {:.3},", self.speedup);
        let _ = writeln!(
            out,
            "  \"mrrg_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},",
            self.mrrg_hits, self.mrrg_misses, self.mrrg_evictions
        );
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"kernel\": \"{}\", \"preset\": \"{}\", \"ii\": {}, \"mii\": {}, \
                 \"wall_seconds\": {:.6}, \"wall_seconds_single\": {:.6}, \"speedup\": {:.3}, \
                 \"identical\": {}",
                json::escape(&k.kernel),
                json::escape(&k.preset),
                k.ii,
                k.mii,
                k.wall_seconds,
                k.wall_seconds_single,
                k.speedup,
                k.identical
            );
            if !k.trace_phases.is_empty() {
                out.push_str(", \"trace_phases\": {");
                for (j, (phase, count, total_ns)) in k.trace_phases.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "\"{}\": {{\"count\": {count}, \"total_ns\": {total_ns}}}",
                        json::escape(phase)
                    );
                }
                out.push('}');
            }
            out.push('}');
            out.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(if self.warm.is_some() {
            "  ],\n"
        } else {
            "  ]\n"
        });
        if let Some(w) = &self.warm {
            out.push_str("  \"warm_start\": {\n");
            let _ = writeln!(
                out,
                "    \"hits\": {}, \"misses\": {}, \"records\": {},",
                w.hits, w.misses, w.records
            );
            let _ = writeln!(
                out,
                "    \"wall_seconds\": {:.6}, \"wall_seconds_cold\": {:.6},",
                w.wall_seconds, w.wall_seconds_cold
            );
            out.push_str("    \"replays\": [\n");
            for (i, r) in w.replays.iter().enumerate() {
                let _ = write!(
                    out,
                    "      {{\"kernel\": \"{}\", \"preset\": \"{}\", \"ii\": {}, \
                     \"ii_cold\": {}, \"verified\": {}, \"wall_seconds\": {:.6}, \
                     \"wall_seconds_cold\": {:.6}}}",
                    json::escape(&r.kernel),
                    json::escape(&r.preset),
                    r.ii,
                    r.ii_cold,
                    r.verified,
                    r.wall_seconds,
                    r.wall_seconds_cold
                );
                out.push_str(if i + 1 < w.replays.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]\n  }\n");
        }
        out.push_str("}\n");
        out
    }

    /// Deterministic projection of the report: every wall-clock field is
    /// dropped, so two runs of the same suite — at *any* thread count —
    /// must produce byte-identical output. CI runs the bench twice and
    /// `cmp`s the stable files to enforce end-to-end determinism.
    pub fn to_stable_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"panorama-bench-stable-v1\",\n");
        let _ = writeln!(out, "  \"mapper\": \"{}\",", json::escape(self.mapper));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"kernel\": \"{}\", \"preset\": \"{}\", \"ii\": {}, \"mii\": {}, \
                 \"identical\": {}}}",
                json::escape(&k.kernel),
                json::escape(&k.preset),
                k.ii,
                k.mii,
                k.identical
            );
            out.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(if self.warm.is_some() {
            "  ],\n"
        } else {
            "  ]\n"
        });
        if let Some(w) = &self.warm {
            out.push_str("  \"warm_start\": {\n");
            let _ = writeln!(
                out,
                "    \"hits\": {}, \"misses\": {}, \"records\": {},",
                w.hits, w.misses, w.records
            );
            out.push_str("    \"replays\": [\n");
            for (i, r) in w.replays.iter().enumerate() {
                let _ = write!(
                    out,
                    "      {{\"kernel\": \"{}\", \"preset\": \"{}\", \"ii\": {}, \
                     \"ii_cold\": {}, \"verified\": {}}}",
                    json::escape(&r.kernel),
                    json::escape(&r.preset),
                    r.ii,
                    r.ii_cold,
                    r.verified
                );
                out.push_str(if i + 1 < w.replays.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]\n  }\n");
        }
        out.push_str("}\n");
        out
    }

    /// Packages the suite as a `panorama-trace-v1` report: one top-level
    /// `kernel` span per suite job, laid end-to-end from the sequential
    /// phase's wall-clocks (that phase genuinely runs jobs back-to-back,
    /// so the timeline is real). The `candidate` field carries the job's
    /// index into [`BenchReport::kernels`].
    pub fn to_trace_report(&self) -> TraceReport {
        let mut events = Vec::with_capacity(self.kernels.len());
        let mut offset = 0u64;
        for (i, k) in self.kernels.iter().enumerate() {
            let ns = (k.wall_seconds_single * 1e9) as u64;
            events.push(TraceEvent {
                phase: "kernel",
                candidate: i as u32,
                seq: 0,
                start_ns: offset,
                end_ns: offset + ns,
                counters: vec![
                    ("ii", k.ii as i64),
                    ("mii", k.mii as i64),
                    ("identical", i64::from(k.identical)),
                ],
                stable: true,
            });
            offset += ns;
        }
        TraceReport {
            kernel: "suite".into(),
            arch: "4x4+8x8".into(),
            mapper: self.mapper.into(),
            threads: self.threads,
            wall_ns: offset,
            events,
        }
    }

    /// Whether every kernel's parallel and sequential compiles agreed.
    pub fn all_identical(&self) -> bool {
        self.kernels.iter().all(|k| k.identical)
    }

    /// CI gate: compares this (fresh) report against a checked-in baseline
    /// JSON. Fails on
    ///
    /// * II drift — any kernel whose achieved II differs from the
    ///   baseline's;
    /// * missing kernels — a kernel present in the baseline but not here;
    /// * wall-clock ceiling — any kernel in *either* phase slower than
    ///   `max_kernel_seconds * max(ceiling_scale, 1.0)`;
    /// * a parallel/sequential mismatch (`identical == false`);
    /// * suite speedup below 1.0 — the batch + warm phase losing outright
    ///   to the sequential baseline;
    /// * a delta-replay that never hit the warm cache, or whose warm
    ///   mapping failed verification.
    ///
    /// Wall-clock values in the baseline are informational only — machines
    /// differ; the ceiling guards against pathological regressions, and
    /// `ceiling_scale` (normally [`calibration_scale`]) widens it on
    /// machines slower than the one the ceiling was tuned on. The II-drift,
    /// determinism, speedup and warm-start checks are never relaxed.
    ///
    /// # Errors
    ///
    /// Returns every violation, one per line.
    pub fn check_against_baseline(
        &self,
        baseline_json: &str,
        max_kernel_seconds: f64,
        ceiling_scale: f64,
    ) -> Result<(), String> {
        let max_kernel_seconds = max_kernel_seconds * ceiling_scale.max(1.0);
        let baseline = json::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
        if baseline.get("schema").and_then(Json::as_str) != Some("panorama-bench-v1") {
            return Err("baseline: unknown or missing schema".into());
        }
        let mut violations = Vec::new();
        let rows = baseline
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing kernels array")?;
        for row in rows {
            let kernel = row.get("kernel").and_then(Json::as_str).unwrap_or("?");
            let preset = row.get("preset").and_then(Json::as_str).unwrap_or("?");
            let baseline_ii = row.get("ii").and_then(Json::as_f64).unwrap_or(-1.0) as i64;
            match self
                .kernels
                .iter()
                .find(|k| k.kernel == kernel && k.preset == preset)
            {
                None => violations.push(format!("{kernel}/{preset}: missing from fresh run")),
                Some(fresh) => {
                    if fresh.ii as i64 != baseline_ii {
                        violations.push(format!(
                            "{kernel}/{preset}: II drift (baseline {baseline_ii}, got {})",
                            fresh.ii
                        ));
                    }
                }
            }
        }
        for k in &self.kernels {
            let worst = k.wall_seconds.max(k.wall_seconds_single);
            if worst > max_kernel_seconds {
                violations.push(format!(
                    "{}/{}: wall-clock {worst:.3}s exceeds ceiling {max_kernel_seconds:.3}s",
                    k.kernel, k.preset
                ));
            }
            if !k.identical {
                violations.push(format!(
                    "{}/{}: parallel and sequential compiles disagree",
                    k.kernel, k.preset
                ));
            }
        }
        if self.speedup < 1.0 {
            violations.push(format!(
                "suite speedup {:.3} < 1.0: the batch + warm phase lost to the sequential baseline",
                self.speedup
            ));
        }
        if let Some(w) = &self.warm {
            if w.hits == 0 {
                violations.push("warm-start replay never hit the cache".into());
            }
            for r in &w.replays {
                if !r.verified {
                    violations.push(format!(
                        "{}/{}: warm-start remapping failed verification",
                        r.kernel, r.preset
                    ));
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("\n"))
        }
    }
}

/// Single-core wall-clock of the calibration workload on the reference
/// machine the checked-in wall-clock ceilings were tuned on, seconds.
const PROBE_REF_SECONDS: f64 = 0.055;

/// Measures how much slower this machine is than the ceiling reference:
/// times a fixed integer workload and returns `elapsed / reference`,
/// clamped to `>= 1.0` (faster machines keep the strict ceiling; slower
/// runners widen it proportionally). Costs a few tens of milliseconds.
pub fn calibration_scale() -> f64 {
    // LCG churn: pure ALU work, no memory pressure, so the ratio tracks
    // scalar CPU speed — the resource the compile pipeline is bound by.
    let t = Instant::now();
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..40_000_000u64 {
        acc = acc
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(i | 1);
    }
    std::hint::black_box(acc);
    (t.elapsed().as_secs_f64() / PROBE_REF_SECONDS).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            mapper: "Ultra-Fast",
            threads: 4,
            suite_wall_seconds: 1.0,
            suite_wall_seconds_single: 2.5,
            speedup: 2.5,
            mrrg_hits: 10,
            mrrg_misses: 2,
            mrrg_evictions: 0,
            kernels: vec![KernelResult {
                kernel: "fir".into(),
                preset: "4x4".into(),
                ii: 3,
                mii: 2,
                wall_seconds: 0.1,
                wall_seconds_single: 0.2,
                speedup: 2.0,
                identical: true,
                trace_phases: vec![("scatter".into(), 3, 1_500_000)],
            }],
            warm: None,
        }
    }

    fn warm_report() -> BenchReport {
        BenchReport {
            warm: Some(WarmReplay {
                hits: 1,
                misses: 0,
                records: 2,
                wall_seconds: 0.01,
                wall_seconds_cold: 0.2,
                replays: vec![ReplayRow {
                    kernel: "fir".into(),
                    preset: "4x4".into(),
                    ii: 3,
                    ii_cold: 3,
                    verified: true,
                    wall_seconds: 0.01,
                    wall_seconds_cold: 0.2,
                }],
            }),
            ..tiny_report()
        }
    }

    #[test]
    fn json_round_trip_parses() {
        let text = tiny_report().to_json();
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("panorama-bench-v1")
        );
        let rows = v.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("ii").and_then(Json::as_f64), Some(3.0));
        assert_eq!(rows[0].get("speedup").and_then(Json::as_f64), Some(2.0));
        let mrrg = v.get("mrrg_cache").unwrap();
        assert_eq!(mrrg.get("hits").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn json_emits_warm_start_section() {
        let v = json::parse(&warm_report().to_json()).unwrap();
        let w = v.get("warm_start").unwrap();
        assert_eq!(w.get("hits").and_then(Json::as_f64), Some(1.0));
        let rows = w.get("replays").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("ii_cold").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn stable_json_drops_wall_clocks() {
        let text = warm_report().to_stable_json();
        assert!(!text.contains("wall_seconds"), "{text}");
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("panorama-bench-stable-v1")
        );
        let rows = v.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("ii").and_then(Json::as_f64), Some(3.0));
        let w = v.get("warm_start").unwrap();
        assert_eq!(w.get("hits").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn baseline_check_flags_drift_and_ceiling() {
        let report = tiny_report();
        // identical baseline: clean
        report
            .check_against_baseline(&report.to_json(), 10.0, 1.0)
            .unwrap();
        // II drift
        let drifted = report.to_json().replace("\"ii\": 3", "\"ii\": 2");
        let err = report
            .check_against_baseline(&drifted, 10.0, 1.0)
            .unwrap_err();
        assert!(err.contains("II drift"), "{err}");
        // ceiling breach
        let err = report
            .check_against_baseline(&report.to_json(), 0.05, 1.0)
            .unwrap_err();
        assert!(err.contains("ceiling"), "{err}");
    }

    #[test]
    fn baseline_check_fails_on_speedup_below_one() {
        let mut report = tiny_report();
        let baseline = report.to_json();
        report.speedup = 0.875;
        let err = report
            .check_against_baseline(&baseline, 10.0, 1.0)
            .unwrap_err();
        assert!(err.contains("speedup 0.875 < 1.0"), "{err}");
    }

    #[test]
    fn baseline_check_fails_on_cold_warm_cache_or_bad_replay() {
        let mut report = warm_report();
        let baseline = report.to_json();
        report.check_against_baseline(&baseline, 10.0, 1.0).unwrap();
        report.warm.as_mut().unwrap().hits = 0;
        let err = report
            .check_against_baseline(&baseline, 10.0, 1.0)
            .unwrap_err();
        assert!(err.contains("never hit the cache"), "{err}");
        report.warm.as_mut().unwrap().hits = 1;
        report.warm.as_mut().unwrap().replays[0].verified = false;
        let err = report
            .check_against_baseline(&baseline, 10.0, 1.0)
            .unwrap_err();
        assert!(err.contains("failed verification"), "{err}");
    }

    #[test]
    fn ceiling_scale_widens_only_the_ceiling() {
        let report = tiny_report();
        // 0.05s ceiling breaches at scale 1, passes at scale 10
        assert!(report
            .check_against_baseline(&report.to_json(), 0.05, 1.0)
            .is_err());
        report
            .check_against_baseline(&report.to_json(), 0.05, 10.0)
            .unwrap();
        // scale below 1 is clamped: still as strict as scale 1
        assert!(report
            .check_against_baseline(&report.to_json(), 0.05, 0.1)
            .is_err());
        // II drift is never forgiven by scaling
        let drifted = report.to_json().replace("\"ii\": 3", "\"ii\": 2");
        let err = report
            .check_against_baseline(&drifted, 10.0, 100.0)
            .unwrap_err();
        assert!(err.contains("II drift"), "{err}");
    }

    #[test]
    fn baseline_check_flags_missing_kernels() {
        let mut fresh = tiny_report();
        let baseline = fresh.to_json();
        fresh.kernels.clear();
        let err = fresh
            .check_against_baseline(&baseline, 10.0, 1.0)
            .unwrap_err();
        assert!(err.contains("missing from fresh run"), "{err}");
    }

    #[test]
    fn calibration_scale_is_at_least_one() {
        let scale = calibration_scale();
        assert!(scale >= 1.0, "{scale}");
        assert!(scale.is_finite());
    }

    #[test]
    fn perturb_adds_one_op_and_two_edges() {
        let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
        let delta = perturb(&dfg);
        assert_eq!(delta.num_ops(), dfg.num_ops() + 1);
        assert_eq!(delta.num_deps(), dfg.num_deps() + 2);
        assert_eq!(delta.num_back_edges(), dfg.num_back_edges());
        delta.validate().unwrap();
    }

    #[test]
    fn trace_export_lays_kernels_end_to_end() {
        let report = tiny_report();
        let trace = report.to_trace_report();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].phase, "kernel");
        assert_eq!(trace.events[0].candidate, 0);
        assert_eq!(trace.wall_ns, trace.events[0].end_ns);
        assert_eq!(trace.top_level_ns(), trace.wall_ns);
        // schema-valid JSON
        let v = json::parse(&trace.to_json()).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("panorama-trace-v1")
        );
    }

    #[test]
    fn json_emits_trace_phase_summaries() {
        let v = json::parse(&tiny_report().to_json()).unwrap();
        let rows = v.get("kernels").and_then(Json::as_arr).unwrap();
        let phases = rows[0].get("trace_phases").and_then(Json::as_obj).unwrap();
        assert_eq!(phases[0].0, "scatter");
        assert_eq!(phases[0].1.get("count").and_then(Json::as_f64), Some(3.0));
    }
}
