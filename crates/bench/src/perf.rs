//! The `panorama bench` performance harness.
//!
//! Compiles the full 12-kernel suite on two architecture presets, twice:
//! once with the requested worker-thread count (jobs fan out over a pool
//! *and* each compile runs its candidate portfolio in parallel), once
//! fully sequential (`threads = 1` everywhere). It records per-kernel
//! wall-clock and achieved II for both phases, checks the two phases
//! produced bit-identical mappings (the portfolio's determinism guarantee,
//! end to end), and reports the suite-level speedup.
//!
//! The report serialises to JSON (schema below) so CI can pin a baseline
//! (`BENCH_PR2.json`) and fail on II drift or per-kernel wall-clock
//! ceiling breaches — see [`BenchReport::check_against_baseline`].
//!
//! ```json
//! {
//!   "schema": "panorama-bench-v1",
//!   "mapper": "Ultra-Fast",
//!   "threads": 8,
//!   "suite_wall_seconds": 1.9,
//!   "suite_wall_seconds_single": 5.6,
//!   "speedup": 2.9,
//!   "kernels": [
//!     {"kernel": "fir", "preset": "4x4", "ii": 3, "mii": 2,
//!      "wall_seconds": 0.04, "wall_seconds_single": 0.09,
//!      "identical": true}
//!   ]
//! }
//! ```

use panorama::{CompileReport, Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_mapper::{SprConfig, SprMapper, UltraFastMapper};
use panorama_trace::json::{self, Json};
use panorama_trace::{phase_totals, RecordingSink, TraceEvent, TraceReport, Tracer};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which lower-level mapper the harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchMapper {
    /// The Ultra-Fast greedy mapper (fast enough for CI smoke runs).
    #[default]
    UltraFast,
    /// SPR\* with a per-mapping time budget (representative, slower).
    Spr,
}

impl BenchMapper {
    /// Display name matching the mapper's own `name()`.
    pub fn name(self) -> &'static str {
        match self {
            BenchMapper::UltraFast => "Ultra-Fast",
            BenchMapper::Spr => "SPR*",
        }
    }
}

/// Harness options.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Worker threads for the parallel phase (`0` = one per core).
    pub threads: usize,
    /// Lower-level mapper.
    pub mapper: BenchMapper,
    /// Per-SPR-mapping wall-clock budget.
    pub spr_budget: Duration,
    /// Trace the parallel-phase compiles: per-kernel phase summaries land
    /// in [`KernelResult::trace_phases`] and the suite timeline is
    /// exportable via [`BenchReport::to_trace_report`].
    pub trace: bool,
    /// Run the pre-mapping DFG optimizer before every compile. Off by
    /// default so checked-in baselines keep their exact IIs.
    pub analyze: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            threads: 0,
            mapper: BenchMapper::UltraFast,
            spr_budget: Duration::from_secs(60),
            trace: false,
            analyze: false,
        }
    }
}

/// One kernel × preset measurement.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (paper Table 1 naming).
    pub kernel: String,
    /// Architecture preset (`"4x4"` / `"8x8"`).
    pub preset: String,
    /// Achieved initiation interval (identical across phases by
    /// construction; checked).
    pub ii: usize,
    /// Static minimum II.
    pub mii: usize,
    /// Wall-clock of the parallel-phase compile, seconds.
    pub wall_seconds: f64,
    /// Wall-clock of the sequential-phase compile, seconds.
    pub wall_seconds_single: f64,
    /// Whether the two phases produced bit-identical mappings and plans.
    pub identical: bool,
    /// Per-phase `(phase, event count, total ns)` rows from tracing the
    /// parallel-phase compile; empty when tracing was off.
    pub trace_phases: Vec<(String, u64, u64)>,
}

/// The full suite measurement.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Mapper driven by the harness.
    pub mapper: &'static str,
    /// Effective worker-thread count of the parallel phase.
    pub threads: usize,
    /// Parallel-phase suite wall-clock, seconds.
    pub suite_wall_seconds: f64,
    /// Sequential-phase suite wall-clock, seconds.
    pub suite_wall_seconds_single: f64,
    /// `suite_wall_seconds_single / suite_wall_seconds`.
    pub speedup: f64,
    /// Per-kernel rows, in suite order.
    pub kernels: Vec<KernelResult>,
}

/// The two architecture presets the suite runs on: a 4×4 with tiny
/// kernels and the scaled 8×8 with ~1/3-paper-size kernels.
fn presets() -> Vec<(&'static str, CgraConfig, KernelScale)> {
    vec![
        ("4x4", CgraConfig::small_4x4(), KernelScale::Tiny),
        ("8x8", CgraConfig::scaled_8x8(), KernelScale::Scaled),
    ]
}

/// One finished compile: the report, its wall-clock seconds and the
/// per-phase trace summaries (`(phase, count, total_ns)`, empty untraced).
type JobResult = (CompileReport, f64, Vec<(String, u64, u64)>);

fn compile_job(
    kernel: KernelId,
    cgra: &Cgra,
    scale: KernelScale,
    threads: usize,
    options: &BenchOptions,
    trace: bool,
) -> Result<JobResult, String> {
    let dfg = kernels::generate(kernel, scale);
    let compiler = Panorama::new(PanoramaConfig {
        threads,
        analyze: options.analyze.then(panorama::AnalyzeConfig::default),
        ..PanoramaConfig::default()
    });
    let sink = trace.then(RecordingSink::shared);
    let tracer = match &sink {
        Some(sink) => Tracer::new(sink.clone()),
        None => Tracer::disabled(),
    };
    let t = Instant::now();
    let report = match options.mapper {
        BenchMapper::UltraFast => {
            compiler.compile_traced(&dfg, cgra, &UltraFastMapper::default(), &tracer)
        }
        BenchMapper::Spr => compiler.compile_traced(
            &dfg,
            cgra,
            &SprMapper::new(SprConfig {
                time_budget: Some(options.spr_budget),
                ..SprConfig::default()
            }),
            &tracer,
        ),
    };
    let wall = t.elapsed().as_secs_f64();
    let phases = sink.map_or_else(Vec::new, |sink| {
        phase_totals(&sink.take())
            .into_iter()
            .map(|(phase, count, total_ns)| (phase.to_string(), count, total_ns))
            .collect()
    });
    report
        .map(|r| (r, wall, phases))
        .map_err(|e| format!("{kernel} on {}: {e}", cgra.config().rows))
}

/// Two compile reports describe bit-identical results: same II and
/// per-op placement/schedule, and the same winning partition labels.
fn reports_identical(a: &CompileReport, b: &CompileReport, dfg_ops: usize) -> bool {
    let (ma, mb) = (a.mapping(), b.mapping());
    if ma.ii() != mb.ii() {
        return false;
    }
    // With the analyzer on, both phases mapped the (deterministically)
    // optimized graph — compare over its op count, not the input's.
    let dfg_ops = a.analyzed_dfg().map_or(dfg_ops, panorama_dfg::Dfg::num_ops);
    if a.analyzed_dfg().map(panorama_dfg::Dfg::num_ops)
        != b.analyzed_dfg().map(panorama_dfg::Dfg::num_ops)
    {
        return false;
    }
    let ops_match = (0..dfg_ops).all(|i| {
        let op = panorama_dfg::OpId::from_index(i);
        ma.pe_of(op) == mb.pe_of(op) && ma.time_of(op) == mb.time_of(op)
    });
    let plans_match = match (a.plan(), b.plan()) {
        (Some(pa), Some(pb)) => pa.partition().labels() == pb.partition().labels(),
        (None, None) => true,
        _ => false,
    };
    ops_match && plans_match
}

/// Runs the suite. See the module docs for what is measured.
///
/// # Errors
///
/// Returns a human-readable message when any kernel fails to compile in
/// either phase.
pub fn run(options: &BenchOptions) -> Result<BenchReport, String> {
    let presets = presets();
    let jobs: Vec<(KernelId, usize)> = KernelId::ALL
        .iter()
        .flat_map(|&k| (0..presets.len()).map(move |p| (k, p)))
        .collect();
    let cgras: Vec<Cgra> = presets
        .iter()
        .map(|(_, config, _)| Cgra::new(config.clone()).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let threads = crate::pool_threads(options.threads, jobs.len());

    // parallel phase: jobs fan out over the pool, each compile also runs
    // its candidate portfolio on `threads` workers (clamped to candidates)
    let t_par = Instant::now();
    let parallel: Vec<Result<JobResult, String>> = run_jobs(threads, jobs.len(), |j| {
        let (kernel, p) = jobs[j];
        compile_job(
            kernel,
            &cgras[p],
            presets[p].2,
            threads,
            options,
            options.trace,
        )
    });
    let suite_wall_seconds = t_par.elapsed().as_secs_f64();

    // sequential phase: one job at a time, portfolio pinned to one thread,
    // never traced — its wall-clock feeds the speedup denominator
    let t_seq = Instant::now();
    let sequential: Vec<Result<JobResult, String>> = jobs
        .iter()
        .map(|&(kernel, p)| compile_job(kernel, &cgras[p], presets[p].2, 1, options, false))
        .collect();
    let suite_wall_seconds_single = t_seq.elapsed().as_secs_f64();

    let mut rows = Vec::with_capacity(jobs.len());
    for (j, &(kernel, p)) in jobs.iter().enumerate() {
        let (par_report, par_wall, trace_phases) = parallel[j].clone()?;
        let (seq_report, seq_wall, _) = sequential[j].clone()?;
        let dfg_ops = kernels::generate(kernel, presets[p].2).num_ops();
        rows.push(KernelResult {
            kernel: kernel.to_string(),
            preset: presets[p].0.to_string(),
            ii: par_report.mapping().ii(),
            mii: par_report.mapping().mii(),
            wall_seconds: par_wall,
            wall_seconds_single: seq_wall,
            identical: reports_identical(&par_report, &seq_report, dfg_ops),
            trace_phases,
        });
    }
    let speedup = if suite_wall_seconds > 0.0 {
        suite_wall_seconds_single / suite_wall_seconds
    } else {
        0.0
    };
    Ok(BenchReport {
        mapper: options.mapper.name(),
        threads,
        suite_wall_seconds,
        suite_wall_seconds_single,
        speedup,
        kernels: rows,
    })
}

impl BenchReport {
    /// Serialises the report with stable field order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"panorama-bench-v1\",\n");
        let _ = writeln!(out, "  \"mapper\": \"{}\",", json::escape(self.mapper));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(
            out,
            "  \"suite_wall_seconds\": {:.6},",
            self.suite_wall_seconds
        );
        let _ = writeln!(
            out,
            "  \"suite_wall_seconds_single\": {:.6},",
            self.suite_wall_seconds_single
        );
        let _ = writeln!(out, "  \"speedup\": {:.3},", self.speedup);
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"kernel\": \"{}\", \"preset\": \"{}\", \"ii\": {}, \"mii\": {}, \
                 \"wall_seconds\": {:.6}, \"wall_seconds_single\": {:.6}, \"identical\": {}",
                json::escape(&k.kernel),
                json::escape(&k.preset),
                k.ii,
                k.mii,
                k.wall_seconds,
                k.wall_seconds_single,
                k.identical
            );
            if !k.trace_phases.is_empty() {
                out.push_str(", \"trace_phases\": {");
                for (j, (phase, count, total_ns)) in k.trace_phases.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "\"{}\": {{\"count\": {count}, \"total_ns\": {total_ns}}}",
                        json::escape(phase)
                    );
                }
                out.push('}');
            }
            out.push('}');
            out.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Packages the suite as a `panorama-trace-v1` report: one top-level
    /// `kernel` span per suite job, laid end-to-end from the sequential
    /// phase's wall-clocks (that phase genuinely runs jobs back-to-back,
    /// so the timeline is real). The `candidate` field carries the job's
    /// index into [`BenchReport::kernels`].
    pub fn to_trace_report(&self) -> TraceReport {
        let mut events = Vec::with_capacity(self.kernels.len());
        let mut offset = 0u64;
        for (i, k) in self.kernels.iter().enumerate() {
            let ns = (k.wall_seconds_single * 1e9) as u64;
            events.push(TraceEvent {
                phase: "kernel",
                candidate: i as u32,
                seq: 0,
                start_ns: offset,
                end_ns: offset + ns,
                counters: vec![
                    ("ii", k.ii as i64),
                    ("mii", k.mii as i64),
                    ("identical", i64::from(k.identical)),
                ],
                stable: true,
            });
            offset += ns;
        }
        TraceReport {
            kernel: "suite".into(),
            arch: "4x4+8x8".into(),
            mapper: self.mapper.into(),
            threads: self.threads,
            wall_ns: offset,
            events,
        }
    }

    /// Whether every kernel's parallel and sequential compiles agreed.
    pub fn all_identical(&self) -> bool {
        self.kernels.iter().all(|k| k.identical)
    }

    /// CI gate: compares this (fresh) report against a checked-in baseline
    /// JSON. Fails on
    ///
    /// * II drift — any kernel whose achieved II differs from the
    ///   baseline's;
    /// * missing kernels — a kernel present in the baseline but not here;
    /// * wall-clock ceiling — any kernel in *either* phase slower than
    ///   `max_kernel_seconds * max(ceiling_scale, 1.0)`;
    /// * a parallel/sequential mismatch (`identical == false`).
    ///
    /// Wall-clock values in the baseline are informational only — machines
    /// differ; the ceiling guards against pathological regressions, and
    /// `ceiling_scale` (normally [`calibration_scale`]) widens it on
    /// machines slower than the one the ceiling was tuned on. The II-drift
    /// and determinism checks are never relaxed.
    ///
    /// # Errors
    ///
    /// Returns every violation, one per line.
    pub fn check_against_baseline(
        &self,
        baseline_json: &str,
        max_kernel_seconds: f64,
        ceiling_scale: f64,
    ) -> Result<(), String> {
        let max_kernel_seconds = max_kernel_seconds * ceiling_scale.max(1.0);
        let baseline = json::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
        if baseline.get("schema").and_then(Json::as_str) != Some("panorama-bench-v1") {
            return Err("baseline: unknown or missing schema".into());
        }
        let mut violations = Vec::new();
        let rows = baseline
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing kernels array")?;
        for row in rows {
            let kernel = row.get("kernel").and_then(Json::as_str).unwrap_or("?");
            let preset = row.get("preset").and_then(Json::as_str).unwrap_or("?");
            let baseline_ii = row.get("ii").and_then(Json::as_f64).unwrap_or(-1.0) as i64;
            match self
                .kernels
                .iter()
                .find(|k| k.kernel == kernel && k.preset == preset)
            {
                None => violations.push(format!("{kernel}/{preset}: missing from fresh run")),
                Some(fresh) => {
                    if fresh.ii as i64 != baseline_ii {
                        violations.push(format!(
                            "{kernel}/{preset}: II drift (baseline {baseline_ii}, got {})",
                            fresh.ii
                        ));
                    }
                }
            }
        }
        for k in &self.kernels {
            let worst = k.wall_seconds.max(k.wall_seconds_single);
            if worst > max_kernel_seconds {
                violations.push(format!(
                    "{}/{}: wall-clock {worst:.3}s exceeds ceiling {max_kernel_seconds:.3}s",
                    k.kernel, k.preset
                ));
            }
            if !k.identical {
                violations.push(format!(
                    "{}/{}: parallel and sequential compiles disagree",
                    k.kernel, k.preset
                ));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("\n"))
        }
    }
}

/// Single-core wall-clock of the calibration workload on the reference
/// machine the checked-in wall-clock ceilings were tuned on, seconds.
const PROBE_REF_SECONDS: f64 = 0.055;

/// Measures how much slower this machine is than the ceiling reference:
/// times a fixed integer workload and returns `elapsed / reference`,
/// clamped to `>= 1.0` (faster machines keep the strict ceiling; slower
/// runners widen it proportionally). Costs a few tens of milliseconds.
pub fn calibration_scale() -> f64 {
    // LCG churn: pure ALU work, no memory pressure, so the ratio tracks
    // scalar CPU speed — the resource the compile pipeline is bound by.
    let t = Instant::now();
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..40_000_000u64 {
        acc = acc
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(i | 1);
    }
    std::hint::black_box(acc);
    (t.elapsed().as_secs_f64() / PROBE_REF_SECONDS).max(1.0)
}

/// Runs `f(0..count)` on a scoped worker pool, results in index order.
/// (A job-level twin of the portfolio pool in `panorama`, kept separate so
/// the bench crate stays decoupled from pipeline internals.)
fn run_jobs<T, F>(threads: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    let results = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                results.lock().expect("bench worker panicked")[i] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .expect("bench worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every job index claimed once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            mapper: "Ultra-Fast",
            threads: 4,
            suite_wall_seconds: 1.0,
            suite_wall_seconds_single: 2.5,
            speedup: 2.5,
            kernels: vec![KernelResult {
                kernel: "fir".into(),
                preset: "4x4".into(),
                ii: 3,
                mii: 2,
                wall_seconds: 0.1,
                wall_seconds_single: 0.2,
                identical: true,
                trace_phases: vec![("scatter".into(), 3, 1_500_000)],
            }],
        }
    }

    #[test]
    fn json_round_trip_parses() {
        let text = tiny_report().to_json();
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("panorama-bench-v1")
        );
        let rows = v.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("ii").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn baseline_check_flags_drift_and_ceiling() {
        let report = tiny_report();
        // identical baseline: clean
        report
            .check_against_baseline(&report.to_json(), 10.0, 1.0)
            .unwrap();
        // II drift
        let drifted = report.to_json().replace("\"ii\": 3", "\"ii\": 2");
        let err = report
            .check_against_baseline(&drifted, 10.0, 1.0)
            .unwrap_err();
        assert!(err.contains("II drift"), "{err}");
        // ceiling breach
        let err = report
            .check_against_baseline(&report.to_json(), 0.05, 1.0)
            .unwrap_err();
        assert!(err.contains("ceiling"), "{err}");
    }

    #[test]
    fn ceiling_scale_widens_only_the_ceiling() {
        let report = tiny_report();
        // 0.05s ceiling breaches at scale 1, passes at scale 10
        assert!(report
            .check_against_baseline(&report.to_json(), 0.05, 1.0)
            .is_err());
        report
            .check_against_baseline(&report.to_json(), 0.05, 10.0)
            .unwrap();
        // scale below 1 is clamped: still as strict as scale 1
        assert!(report
            .check_against_baseline(&report.to_json(), 0.05, 0.1)
            .is_err());
        // II drift is never forgiven by scaling
        let drifted = report.to_json().replace("\"ii\": 3", "\"ii\": 2");
        let err = report
            .check_against_baseline(&drifted, 10.0, 100.0)
            .unwrap_err();
        assert!(err.contains("II drift"), "{err}");
    }

    #[test]
    fn baseline_check_flags_missing_kernels() {
        let mut fresh = tiny_report();
        let baseline = fresh.to_json();
        fresh.kernels.clear();
        let err = fresh
            .check_against_baseline(&baseline, 10.0, 1.0)
            .unwrap_err();
        assert!(err.contains("missing from fresh run"), "{err}");
    }

    #[test]
    fn calibration_scale_is_at_least_one() {
        let scale = calibration_scale();
        assert!(scale >= 1.0, "{scale}");
        assert!(scale.is_finite());
    }

    #[test]
    fn trace_export_lays_kernels_end_to_end() {
        let report = tiny_report();
        let trace = report.to_trace_report();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].phase, "kernel");
        assert_eq!(trace.events[0].candidate, 0);
        assert_eq!(trace.wall_ns, trace.events[0].end_ns);
        assert_eq!(trace.top_level_ns(), trace.wall_ns);
        // schema-valid JSON
        let v = json::parse(&trace.to_json()).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("panorama-trace-v1")
        );
    }

    #[test]
    fn json_emits_trace_phase_summaries() {
        let v = json::parse(&tiny_report().to_json()).unwrap();
        let rows = v.get("kernels").and_then(Json::as_arr).unwrap();
        let phases = rows[0].get("trace_phases").and_then(Json::as_obj).unwrap();
        assert_eq!(phases[0].0, "scatter");
        assert_eq!(phases[0].1.get("count").and_then(Json::as_f64), Some(3.0));
    }
}
