//! The table/figure generators (paper §4).

use crate::{geomean, profile, Table};
use panorama::{CompileReport, Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_cluster::{explore_partitions, top_balanced, SpectralConfig};
use panorama_dfg::{kernels, Dfg, KernelId};
use panorama_mapper::{min_ii, LowerLevelMapper, SprConfig, SprMapper, UltraFastMapper};
use panorama_power::PowerModel;
use std::time::Duration;

fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

fn spr_mapper(budget: Duration) -> SprMapper {
    SprMapper::new(SprConfig {
        time_budget: Some(budget),
        ..SprConfig::default()
    })
}

/// Compiles with and without PANORAMA guidance; `Err` cells become `fail`.
fn run_pair<M: LowerLevelMapper>(
    compiler: &Panorama,
    dfg: &Dfg,
    cgra: &Cgra,
    mapper: &M,
) -> (
    Result<CompileReport, panorama::PanoramaError>,
    Result<CompileReport, panorama::PanoramaError>,
) {
    let base = compiler.compile_baseline(dfg, cgra, mapper);
    let pan = compiler.compile(dfg, cgra, mapper);
    (base, pan)
}

/// **Table 1a** — DFG characteristics, clustering results, cluster-mapping
/// histogram and higher-level compile time, with the paper's published
/// numbers alongside.
pub fn table1a() -> String {
    let p = profile();
    let cgra = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let compiler = Panorama::new(PanoramaConfig::default());
    let mut t = Table::new(
        format!("Table 1a — DFG clustering & cluster mapping [{}]", p.name),
        &[
            "kernel",
            "nodes",
            "edges",
            "maxdeg",
            "(paper n/e/d)",
            "K",
            "Inter-E",
            "Intra-E",
            "STD",
            "histogram",
            "t_clus",
            "t_map",
        ],
    );
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, p.scale);
        let s = dfg.stats();
        let (pn, pe, pd) = id.paper_stats();
        match compiler.plan(&dfg, &cgra) {
            Ok(plan) => {
                let part = plan.partition();
                let hist: Vec<String> = plan
                    .cluster_map()
                    .histogram()
                    .iter()
                    .map(|row| {
                        format!(
                            "[{}]",
                            row.iter()
                                .map(std::string::ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    })
                    .collect();
                t.row(&[
                    id.to_string(),
                    s.nodes.to_string(),
                    s.edges.to_string(),
                    s.max_degree.to_string(),
                    format!("({pn}/{pe}/{pd})"),
                    part.k().to_string(),
                    part.inter_edges(&dfg).to_string(),
                    part.intra_edges(&dfg).to_string(),
                    format!("{:.1}", part.size_std_dev()),
                    hist.join(","),
                    secs(plan.clustering_time()),
                    secs(plan.cluster_mapping_time()),
                ]);
            }
            Err(e) => t.row(&[id.to_string(), format!("plan failed: {e}")]),
        }
    }
    t.render()
}

/// **Table 1b** — scalability of prior architecture-adaptive compilers
/// (literature rows) plus our measured SPR\* row (30-node DFG, 4×4 CGRA,
/// like the paper's comparison point).
pub fn table1b() -> String {
    let mut t = Table::new(
        "Table 1b — architecture-adaptive compiler scalability",
        &["compiler", "DFG nodes", "CGRA", "compile time"],
    );
    for (name, nodes, size, time) in [
        ("CGRA-ME [7]", "12", "4x4", "NA"),
        ("SPKM [11]", "16", "4x4", "~1s"),
        ("G-Minor [5]", "35", "4x4, 16x16", "0.2s, 7s"),
        ("EPIMAP [8]", "35", "4x4, 16x16", "54s, 23min"),
        ("DRESC [6]", "56", "4x4", "~15min"),
        ("EMS [9]", "4~142", "4x4", "~37min"),
        ("SPR [2]", "263", "16x16", "NA"),
    ] {
        t.row(&[
            name.to_string(),
            nodes.to_string(),
            size.to_string(),
            time.to_string(),
        ]);
    }
    // our measured rows: SPR* on a ~30-node DFG, and the exact ILP mapper
    // on growing DFGs to expose the exhaustive-formulation scalability wall
    let cgra = Cgra::new(CgraConfig::small_4x4()).expect("4x4 is valid");
    let dfg = panorama_dfg::random_dfg(&panorama_dfg::RandomDfgConfig {
        seed: 30,
        layers: 5,
        width: 6,
        extra_fanin: 1,
        back_edges: 1,
    });
    let mapper = spr_mapper(Duration::from_secs(120));
    match mapper.map(&dfg, &cgra, None) {
        Ok(m) => t.row(&[
            "SPR* (ours, measured)".to_string(),
            dfg.num_ops().to_string(),
            "4x4".to_string(),
            format!("{} (II {})", secs(m.stats().compile_time), m.ii()),
        ]),
        Err(e) => t.row(&[
            "SPR* (ours, measured)".to_string(),
            dfg.num_ops().to_string(),
            "4x4".to_string(),
            format!("failed: {e}"),
        ]),
    }
    let exact = panorama_mapper::ExactMapper::default();
    for width in [2usize, 4, 6] {
        let dfg = panorama_dfg::random_dfg(&panorama_dfg::RandomDfgConfig {
            seed: 12,
            layers: 4,
            width,
            extra_fanin: 1,
            back_edges: 1,
        });
        let cell = match exact.map(&dfg, &cgra, None) {
            Ok(m) => format!("{} (II {})", secs(m.stats().compile_time), m.ii()),
            Err(e) => format!("failed: {e}"),
        };
        t.row(&[
            "exhaustive (ours, measured)".to_string(),
            dfg.num_ops().to_string(),
            "4x4".to_string(),
            cell,
        ]);
    }
    t.render()
}

/// **Figure 5** — imbalance factor vs number of clusters for four kernels.
pub fn fig5() -> String {
    let p = profile();
    let cgra = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let (rows, _) = cgra.cluster_grid();
    let mut t = Table::new(
        format!(
            "Figure 5 — imbalance factor (%) vs cluster count [{}]",
            p.name
        ),
        &["kernel", "k", "IF (%)"],
    );
    for id in [
        KernelId::Edn,
        KernelId::IdctCols,
        KernelId::Conv2d,
        KernelId::Fir,
    ] {
        let dfg = kernels::generate(id, p.scale);
        let r = rows.max(2);
        let m = (dfg.num_ops() / 8).clamp(r, 32);
        let parts = explore_partitions(&dfg, r, m, &SpectralConfig::default())
            .expect("kernels cluster cleanly");
        for part in &parts {
            t.row(&[
                id.to_string(),
                part.k().to_string(),
                format!("{:.1}", part.imbalance_factor() * 100.0),
            ]);
        }
        // the paper reports IF < 20% achievable for every kernel
        let best = top_balanced(&parts, 1)[0].1;
        t.row(&[
            id.to_string(),
            format!("best={}", best.k()),
            format!("{:.1}", best.imbalance_factor() * 100.0),
        ]);
    }
    t.render()
}

fn qom_time_figure<M: LowerLevelMapper>(title: &str, mapper: &M, paper_claim: &str) -> String {
    let p = profile();
    let cgra = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let compiler = Panorama::new(PanoramaConfig::default());
    let mut t = Table::new(
        format!("{title} [{}]", p.name),
        &[
            "kernel",
            "MII",
            "base II",
            "base QoM",
            "base time",
            "Pan II",
            "Pan QoM",
            "Pan time",
        ],
    );
    let mut qom_ratio = Vec::new();
    let mut speedups = Vec::new();
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, p.scale);
        let mii = min_ii(&dfg, &cgra).mii();
        let (base, pan) = run_pair(&compiler, &dfg, &cgra, mapper);
        let cells = |r: &Result<CompileReport, panorama::PanoramaError>| match r {
            Ok(rep) => (
                rep.mapping().ii().to_string(),
                format!("{:.2}", rep.mapping().qom()),
                secs(rep.total_time()),
            ),
            Err(_) => ("fail".into(), "0.00".into(), "-".into()),
        };
        let (bi, bq, bt) = cells(&base);
        let (pi, pq, pt) = cells(&pan);
        if let (Ok(b), Ok(pn)) = (&base, &pan) {
            qom_ratio.push(pn.mapping().qom() / b.mapping().qom());
            speedups.push(b.total_time().as_secs_f64() / pn.total_time().as_secs_f64());
        }
        t.row(&[id.to_string(), mii.to_string(), bi, bq, bt, pi, pq, pt]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "summary: geomean QoM ratio (Pan/base) {:.2}x, geomean compile speedup {:.2}x (both over kernels where both mapped)\n",
        geomean(&qom_ratio),
        geomean(&speedups)
    ));
    out.push_str(paper_claim);
    out.push('\n');
    out
}

/// **Figure 7** — QoM and compile time, SPR\* vs Pan-SPR\*, all kernels.
pub fn fig7() -> String {
    let budget = profile().spr_budget;
    qom_time_figure(
        "Figure 7 — SPR* vs Pan-SPR* (QoM = MII/II, compile time)",
        &spr_mapper(budget),
        "paper: Pan-SPR* ~22% better QoM, 8.7x faster; MII reached on all kernels except mmul",
    )
}

/// **Figure 9** — QoM and compile time, Ultra-Fast vs Pan-Ultra-Fast.
pub fn fig9() -> String {
    qom_time_figure(
        "Figure 9 — Ultra-Fast vs Pan-Ultra-Fast (QoM, compile time)",
        &UltraFastMapper::default(),
        "paper: Pan-Ultra-Fast 2.6x better QoM, 4.8x faster compile",
    )
}

/// **Figure 8** — power efficiency (MOPS/mW) of a small vs the main CGRA
/// under SPR\* and Pan-SPR\*, normalised to SPR\* on the small CGRA.
pub fn fig8() -> String {
    let p = profile();
    let big = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let small = Cgra::new(p.small_cgra.clone()).expect("small CGRA is valid");
    let compiler = Panorama::new(PanoramaConfig::default());
    let model = PowerModel::forty_nm();
    let mapper = spr_mapper(p.spr_budget);
    // a representative subset keeps the 4-way sweep tractable
    let kernel_set = [
        KernelId::Cordic,
        KernelId::Edn,
        KernelId::IdctCols,
        KernelId::JpegFdct,
        KernelId::KMeansClustering,
        KernelId::Fir,
    ];
    let mut t = Table::new(
        format!(
            "Figure 8 — power efficiency normalised to SPR* on {}x{} [{}]",
            p.small_cgra.rows, p.small_cgra.cols, p.name
        ),
        &["kernel", "SPR* small", "Pan small", "SPR* big", "Pan big"],
    );
    let eff = |rep: &CompileReport, cgra: &Cgra, dfg: &Dfg| -> f64 {
        let hops = rep
            .mapping()
            .route_stats(dfg, cgra)
            .map_or(dfg.num_deps(), |s| s.link_hops);
        model
            .evaluate(cgra, dfg.num_ops(), hops, rep.mapping().ii())
            .efficiency()
    };
    let mut ratios = Vec::new();
    for id in kernel_set {
        let dfg = kernels::generate(id, p.scale);
        let results = [
            compiler.compile_baseline(&dfg, &small, &mapper),
            compiler.compile(&dfg, &small, &mapper),
            compiler.compile_baseline(&dfg, &big, &mapper),
            compiler.compile(&dfg, &big, &mapper),
        ];
        let base = results[0].as_ref().ok().map(|r| eff(r, &small, &dfg));
        let mut cells = vec![id.to_string()];
        for (i, r) in results.iter().enumerate() {
            let cgra = if i < 2 { &small } else { &big };
            match (r, base) {
                (Ok(rep), Some(b)) if b > 0.0 => {
                    let e = eff(rep, cgra, &dfg) / b;
                    if i == 3 {
                        ratios.push(e);
                    }
                    cells.push(format!("{e:.2}"));
                }
                (Ok(_), _) => cells.push("1.00".into()),
                (Err(_), _) => cells.push("fail".into()),
            }
        }
        t.row(&cells);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "summary: geomean Pan-SPR*-on-big vs SPR*-on-small efficiency {:.2}x\n",
        geomean(&ratios)
    ));
    out.push_str(
        "paper: 16x16 is 68% more power-efficient than 9x9; Pan-SPR* adds 16% over SPR* on 16x16\n",
    );
    out
}
