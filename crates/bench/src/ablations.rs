//! Ablation studies for the design choices called out in DESIGN.md §6:
//! IF-driven cluster-count selection, top-3 partition carrying, and the
//! hard cluster restriction itself.

use crate::{profile, Table};
use panorama::{Panorama, PanoramaConfig};
use panorama_arch::Cgra;
use panorama_cluster::{explore_partitions, Cdg, SpectralConfig};
use panorama_dfg::{kernels, KernelId};
use panorama_mapper::{LowerLevelMapper, Restriction, SprConfig, SprMapper, UltraFastMapper};
use panorama_place::{map_clusters, ScatterConfig};

const ABLATION_KERNELS: [KernelId; 3] = [KernelId::Cordic, KernelId::Edn, KernelId::IdctCols];

fn spr(budget: std::time::Duration) -> SprMapper {
    SprMapper::new(SprConfig {
        time_budget: Some(budget),
        ..SprConfig::default()
    })
}

/// **Ablation: IF-driven k selection vs a fixed k = R·C.**
///
/// The paper picks the cluster count by imbalance factor (Figure 5); the
/// obvious fixed alternative is one DFG cluster per CGRA cluster.
pub fn fixed_k() -> String {
    let p = profile();
    let cgra = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let (rows, cols) = cgra.cluster_grid();
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = spr(p.spr_budget);
    let mut t = Table::new(
        format!("Ablation — IF-explored k vs fixed k = R*C [{}]", p.name),
        &["kernel", "IF-explored QoM", "fixed-k QoM"],
    );
    for id in ABLATION_KERNELS {
        let dfg = kernels::generate(id, p.scale);
        let explored = compiler
            .compile(&dfg, &cgra, &mapper)
            .map_or_else(|_| "fail".into(), |r| format!("{:.2}", r.mapping().qom()));
        // fixed k: single partition at exactly R*C clusters
        let fixed = explore_partitions(&dfg, rows * cols, rows * cols, &SpectralConfig::default())
            .ok()
            .and_then(|parts| {
                let cdg = Cdg::new(&dfg, &parts[0]);
                let map = map_clusters(&cdg, rows, cols, &ScatterConfig::default()).ok()?;
                let restriction = Restriction::from_cluster_map(&dfg, &cdg, &map, &cgra);
                mapper.map(&dfg, &cgra, Some(&restriction)).ok()
            })
            .map_or_else(|| "fail".into(), |m| format!("{:.2}", m.qom()));
        t.row(&[id.to_string(), explored, fixed]);
    }
    t.render()
}

/// **Ablation: top-3 balanced partitions vs top-1.**
pub fn top_partitions() -> String {
    let p = profile();
    let cgra = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let mapper = spr(p.spr_budget);
    let mut t = Table::new(
        format!("Ablation — top-3 vs top-1 balanced partitions [{}]", p.name),
        &["kernel", "top-3 QoM", "top-1 QoM"],
    );
    for id in ABLATION_KERNELS {
        let dfg = kernels::generate(id, p.scale);
        let run = |top: usize| {
            Panorama::new(PanoramaConfig {
                top_partitions: top,
                ..PanoramaConfig::default()
            })
            .compile(&dfg, &cgra, &mapper)
            .map_or_else(|_| "fail".into(), |r| format!("{:.2}", r.mapping().qom()))
        };
        t.row(&[id.to_string(), run(3), run(1)]);
    }
    t.render()
}

/// **Ablation: cluster restriction on vs off** — the value of the guided
/// placement itself, for both lower-level mappers.
pub fn restriction() -> String {
    let p = profile();
    let cgra = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let compiler = Panorama::new(PanoramaConfig::default());
    let spr_mapper = spr(p.spr_budget);
    let uf = UltraFastMapper::default();
    let mut t = Table::new(
        format!("Ablation — cluster restriction on/off [{}]", p.name),
        &["kernel", "SPR* guided", "SPR* free", "UF guided", "UF free"],
    );
    for id in ABLATION_KERNELS {
        let dfg = kernels::generate(id, p.scale);
        let qom = |r: Result<panorama::CompileReport, panorama::PanoramaError>| {
            r.map_or_else(
                |_| "fail".into(),
                |rep| format!("{:.2}", rep.mapping().qom()),
            )
        };
        t.row(&[
            id.to_string(),
            qom(compiler.compile(&dfg, &cgra, &spr_mapper)),
            qom(compiler.compile_baseline(&dfg, &cgra, &spr_mapper)),
            qom(compiler.compile(&dfg, &cgra, &uf)),
            qom(compiler.compile_baseline(&dfg, &cgra, &uf)),
        ]);
    }
    t.render()
}

/// **Ablation: unnormalised vs normalised spectral clustering** — the two
/// Laplacian variants of the tutorial the paper builds on.
pub fn laplacian() -> String {
    use panorama_cluster::{SpectralConfig, SpectralKind};
    let p = profile();
    let cgra = Cgra::new(p.cgra.clone()).expect("profile CGRA is valid");
    let mapper = spr(p.spr_budget);
    let mut t = Table::new(
        format!(
            "Ablation — unnormalised vs normalised Laplacian [{}]",
            p.name
        ),
        &["kernel", "unnormalised QoM", "normalised QoM"],
    );
    for id in ABLATION_KERNELS {
        let dfg = kernels::generate(id, p.scale);
        let run = |kind: SpectralKind| {
            Panorama::new(PanoramaConfig {
                spectral: SpectralConfig {
                    kind,
                    ..SpectralConfig::default()
                },
                ..PanoramaConfig::default()
            })
            .compile(&dfg, &cgra, &mapper)
            .map_or_else(|_| "fail".into(), |r| format!("{:.2}", r.mapping().qom()))
        };
        t.row(&[
            id.to_string(),
            run(SpectralKind::Unnormalized),
            run(SpectralKind::Normalized),
        ]);
    }
    t.render()
}
