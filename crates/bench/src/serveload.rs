//! Deterministic load generator for the compile daemon.
//!
//! Drives N concurrent in-process clients through a *real* socket against
//! a `panorama-serve` daemon started inside this process, in two phases:
//!
//! 1. **cold** — a fresh daemon with an empty disk cache compiles the
//!    request mix (the 12 benchmark kernels at tiny scale, cycled until
//!    the request budget is spent);
//! 2. **warm** — the daemon is drained, *restarted* on the same cache
//!    directory, and the identical mix is replayed. Every response must
//!    come back byte-identical to its cold twin and be served from a
//!    cache tier (hit rate 100%), which exercises the disk tier's
//!    restart-survival guarantee end to end.
//!
//! The report (`panorama-serve-bench-v1`) carries throughput and
//! log2-bucket latency percentiles; the stable projection
//! (`panorama-serve-bench-stable-v1`) strips every wall-clock-dependent
//! field so CI can `cmp` runs at different worker counts byte-for-byte.
//! `check` gates on the request-conservation and cache-hit-rate
//! invariants rather than on timing.

use panorama_serve::{ServeConfig, Server};
use panorama_trace::json::{parse, Json};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

/// The kernel mix: every benchmark kernel, tiny scale, on the small
/// array with the fastest mapper — the point is serving behaviour, not
/// mapper quality, so each compile is milliseconds.
const KERNELS: &[&str] = &[
    "edn",
    "idctcols",
    "idctrows",
    "conv2d",
    "matchedfilter",
    "matrixmultiply",
    "cordic",
    "kmeansclustering",
    "fir",
    "jpegfdct",
    "jpegidctfst",
    "invertmat",
];

/// Load-generator knobs; every field maps to a `panorama bench --serve`
/// flag.
#[derive(Debug, Clone)]
pub struct ServeLoadOptions {
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests per phase (cycled over the kernel mix).
    pub requests: usize,
    /// Daemon worker threads.
    pub workers: usize,
    /// Disk-cache directory shared by both phases (pre-existing contents
    /// are removed so the cold phase really is cold).
    pub cache_dir: PathBuf,
}

impl Default for ServeLoadOptions {
    fn default() -> Self {
        ServeLoadOptions {
            clients: 4,
            requests: 48,
            workers: 2,
            cache_dir: std::env::temp_dir().join("panorama-serve-bench"),
        }
    }
}

/// Log2-bucket latency histogram (same shape the daemon uses, kept local
/// so the bench does not reach into serve internals).
#[derive(Debug, Clone)]
struct Hist {
    buckets: [u64; 64],
    count: u64,
    total_ns: u64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
        }
    }

    fn add(&mut self, ns: u64) {
        let idx = (64 - ns.leading_zeros() as usize).min(63);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
    }

    fn percentile_ns(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count * p).div_ceil(100).max(1);
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if idx >= 63 {
                    u64::MAX
                } else {
                    (1u64 << idx) - 1
                };
            }
        }
        u64::MAX
    }
}

/// One phase's measurements.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Wall-clock of the whole phase, seconds.
    pub wall_seconds: f64,
    /// Requests per second over the phase wall clock.
    pub throughput_rps: f64,
    /// End-to-end latency percentiles (log2-bucket upper bounds).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Responses with HTTP status 200 (must equal `requests`).
    pub ok: u64,
    /// Responses with any other status.
    pub not_ok: u64,
    /// Daemon-side `requests.received` scraped after the phase.
    pub received: u64,
    /// Daemon-side `requests.completed`.
    pub completed: u64,
    /// Daemon-side `requests.shed + cancelled + failed + quota_rejected`.
    pub lost: u64,
    /// Daemon-side `result_cache.hits` (memory or disk tier).
    pub cache_hits: u64,
    /// Daemon-side `disk_cache.hits`.
    pub disk_hits: u64,
    /// Daemon-side `disk_cache.entries` at scrape time.
    pub disk_entries: u64,
}

/// The two-phase load-bench result.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// Options the run used.
    pub clients: usize,
    /// Requests per phase.
    pub requests: usize,
    /// Daemon workers.
    pub workers: usize,
    /// Distinct compile keys in the mix.
    pub unique_kernels: usize,
    /// Cold-start phase (empty disk cache).
    pub cold: PhaseReport,
    /// Warm phase (restarted daemon, same cache directory).
    pub warm: PhaseReport,
    /// Every warm response byte-identical to its cold twin.
    pub identical_replay: bool,
}

fn phase_json(p: &PhaseReport) -> String {
    format!(
        "{{\"wall_seconds\": {:.6}, \"throughput_rps\": {:.3}, \
         \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
         \"ok\": {}, \"not_ok\": {}, \"received\": {}, \"completed\": {}, \
         \"lost\": {}, \"cache_hits\": {}, \"disk_hits\": {}, \"disk_entries\": {}}}",
        p.wall_seconds,
        p.throughput_rps,
        p.p50_ns,
        p.p90_ns,
        p.p99_ns,
        p.ok,
        p.not_ok,
        p.received,
        p.completed,
        p.lost,
        p.cache_hits,
        p.disk_hits,
        p.disk_entries,
    )
}

impl ServeLoadReport {
    /// Serialises the full report (`panorama-serve-bench-v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"panorama-serve-bench-v1\",\n");
        let _ = writeln!(out, "  \"clients\": {},", self.clients);
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"unique_kernels\": {},", self.unique_kernels);
        let _ = writeln!(out, "  \"cold\": {},", phase_json(&self.cold));
        let _ = writeln!(out, "  \"warm\": {},", phase_json(&self.warm));
        let _ = writeln!(out, "  \"identical_replay\": {}", self.identical_replay);
        out.push_str("}\n");
        out
    }

    /// The wall-clock-free projection (`panorama-serve-bench-stable-v1`):
    /// byte-identical across runs, machines, and worker counts, so CI
    /// `cmp`s it directly. Racy counters (disk hit counts can vary with
    /// promotion races between clients) are projected to the invariants
    /// they must satisfy, not their exact values.
    pub fn to_stable_json(&self) -> String {
        let conserve = |p: &PhaseReport| {
            p.received == self.requests as u64
                && p.completed == p.received
                && p.lost == 0
                && p.ok == self.requests as u64
                && p.not_ok == 0
        };
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"panorama-serve-bench-stable-v1\",\n");
        let _ = writeln!(out, "  \"clients\": {},", self.clients);
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"unique_kernels\": {},", self.unique_kernels);
        let _ = writeln!(out, "  \"cold_conserved\": {},", conserve(&self.cold));
        let _ = writeln!(out, "  \"warm_conserved\": {},", conserve(&self.warm));
        let _ = writeln!(
            out,
            "  \"warm_hit_rate_pct\": {},",
            if self.requests == 0 {
                0
            } else {
                self.warm.cache_hits * 100 / self.requests as u64
            }
        );
        let _ = writeln!(
            out,
            "  \"disk_survived_restart\": {},",
            self.warm.disk_hits > 0 && self.warm.disk_entries > 0
        );
        let _ = writeln!(out, "  \"identical_replay\": {}", self.identical_replay);
        out.push_str("}\n");
        out
    }

    /// Gates the run on its invariants: request conservation in both
    /// phases, zero lost requests, a 100% warm hit rate, a disk tier
    /// that actually survived the restart, and byte-identical replay.
    ///
    /// # Errors
    ///
    /// One message per violated invariant, joined by `; `.
    pub fn check(&self) -> Result<(), String> {
        let mut errors = Vec::new();
        for (name, p) in [("cold", &self.cold), ("warm", &self.warm)] {
            if p.ok != self.requests as u64 || p.not_ok != 0 {
                errors.push(format!(
                    "{name}: {} of {} requests returned non-200",
                    p.not_ok, self.requests
                ));
            }
            if p.received != self.requests as u64 {
                errors.push(format!(
                    "{name}: conservation broken: sent {} but daemon received {}",
                    self.requests, p.received
                ));
            }
            if p.completed != p.received || p.lost != 0 {
                errors.push(format!(
                    "{name}: conservation broken: received {} != completed {} (+{} lost)",
                    p.received, p.completed, p.lost
                ));
            }
        }
        if self.warm.cache_hits != self.requests as u64 {
            errors.push(format!(
                "warm hit rate {}/{} != 100%",
                self.warm.cache_hits, self.requests
            ));
        }
        if self.warm.disk_hits == 0 || self.warm.disk_entries == 0 {
            errors.push("disk cache served nothing after the restart".to_string());
        }
        if !self.identical_replay {
            errors.push("warm responses were not byte-identical to cold".to_string());
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.join("; "))
        }
    }

    /// Additionally gates against a committed baseline report: the
    /// baseline must describe the same workload shape and itself satisfy
    /// the stable invariants (wall clocks are never compared).
    ///
    /// # Errors
    ///
    /// Explains the first mismatch.
    pub fn check_against_baseline(&self, baseline_json: &str) -> Result<(), String> {
        self.check()?;
        let doc = parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
        let field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline missing `{k}`"))
        };
        match doc.get("schema").and_then(Json::as_str) {
            Some("panorama-serve-bench-v1") => {}
            other => return Err(format!("baseline schema {other:?}")),
        }
        if field("requests")? as usize != self.requests {
            return Err(format!(
                "baseline ran {} requests, this run {}",
                field("requests")? as usize,
                self.requests
            ));
        }
        if field("unique_kernels")? as usize != self.unique_kernels {
            return Err("baseline kernel mix differs".to_string());
        }
        match doc.get("identical_replay").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => Err("baseline itself lacks identical_replay=true".to_string()),
        }
    }
}

/// One HTTP request over a fresh connection; returns `(status, body)`.
fn http_post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("bad status line")?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let head = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("bad status line")?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

/// The deterministic request mix: request `i` compiles kernel
/// `KERNELS[i % 12]`.
fn request_body(i: usize) -> String {
    format!(
        "{{\"kernel\":\"{}\",\"arch\":\"4x4\",\"scale\":\"tiny\",\"mapper\":\"ultrafast\"}}",
        KERNELS[i % KERNELS.len()]
    )
}

fn metric(doc: &Json, section: &str, field: &str) -> u64 {
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64
}

/// Runs one phase: start a daemon on `cache_dir`, fire the mix from
/// `clients` threads, scrape `/metrics`, drain. Returns the phase report
/// and every response body (request-indexed) for the replay comparison.
fn run_phase(options: &ServeLoadOptions) -> Result<(PhaseReport, Vec<String>), String> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: options.workers.max(1),
        // Generous queue: the bench measures cache and batch behaviour,
        // not shedding (`check` requires zero shed).
        queue_depth: options.requests.max(16),
        cache_dir: Some(options.cache_dir.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let drain = server.drain_handle();
    let serve_thread = std::thread::spawn(move || server.run());

    let clients = options.clients.max(1);
    let total = options.requests;
    let started = Instant::now();
    let mut joins = Vec::with_capacity(clients);
    for c in 0..clients {
        joins.push(std::thread::spawn(move || {
            // Client c takes requests c, c+clients, c+2*clients, … so the
            // full index set is covered exactly once, deterministically.
            let mut hist = Hist::new();
            let mut bodies: Vec<(usize, u16, String)> = Vec::new();
            for i in (c..total).step_by(clients) {
                let body = request_body(i);
                let t0 = Instant::now();
                let (status, payload) = http_post(addr, "/compile", &body)?;
                hist.add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                bodies.push((i, status, payload));
            }
            Ok::<(Hist, Vec<(usize, u16, String)>), String>((hist, bodies))
        }));
    }
    let mut hist = Hist::new();
    let mut responses: Vec<String> = vec![String::new(); total];
    let (mut ok, mut not_ok) = (0u64, 0u64);
    for join in joins {
        let (h, bodies) = join.join().map_err(|_| "client thread panicked")??;
        hist.merge(&h);
        for (i, status, payload) in bodies {
            if status == 200 {
                ok += 1;
            } else {
                not_ok += 1;
            }
            responses[i] = payload;
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    let (status, metrics_body) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(format!("/metrics returned {status}"));
    }
    let doc = parse(&metrics_body).map_err(|e| format!("metrics parse: {e}"))?;
    let report = PhaseReport {
        wall_seconds,
        throughput_rps: if wall_seconds > 0.0 {
            total as f64 / wall_seconds
        } else {
            0.0
        },
        p50_ns: hist.percentile_ns(50),
        p90_ns: hist.percentile_ns(90),
        p99_ns: hist.percentile_ns(99),
        ok,
        not_ok,
        received: metric(&doc, "requests", "received"),
        completed: metric(&doc, "requests", "completed"),
        lost: metric(&doc, "requests", "shed")
            + metric(&doc, "requests", "cancelled")
            + metric(&doc, "requests", "failed")
            + metric(&doc, "requests", "quota_rejected"),
        cache_hits: metric(&doc, "result_cache", "hits"),
        disk_hits: metric(&doc, "disk_cache", "hits"),
        disk_entries: metric(&doc, "disk_cache", "entries"),
    };

    drain.drain();
    serve_thread
        .join()
        .map_err(|_| "serve thread panicked")?
        .map_err(|e| format!("serve: {e}"))?;
    Ok((report, responses))
}

/// Runs the two-phase load bench.
///
/// # Errors
///
/// Propagates daemon/socket failures; invariant violations are *not*
/// errors here — they surface via [`ServeLoadReport::check`].
pub fn run_serve_load(options: &ServeLoadOptions) -> Result<ServeLoadReport, String> {
    // A genuinely cold phase 1: scrub any previous cache contents.
    let _ = std::fs::remove_dir_all(&options.cache_dir);
    let (cold, cold_bodies) = run_phase(options)?;
    // Phase 2: a *new* daemon process-state on the same directory — the
    // only carried-over state is the disk cache.
    let (warm, warm_bodies) = run_phase(options)?;
    let identical_replay = cold_bodies == warm_bodies;
    Ok(ServeLoadReport {
        clients: options.clients.max(1),
        requests: options.requests,
        workers: options.workers.max(1),
        unique_kernels: KERNELS.len().min(options.requests),
        cold,
        warm,
        identical_replay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeLoadReport {
        let phase = |hits: u64, disk_hits: u64| PhaseReport {
            wall_seconds: 1.5,
            throughput_rps: 16.0,
            p50_ns: 1023,
            p90_ns: 2047,
            p99_ns: 4095,
            ok: 24,
            not_ok: 0,
            received: 24,
            completed: 24,
            lost: 0,
            cache_hits: hits,
            disk_hits,
            disk_entries: 12,
        };
        ServeLoadReport {
            clients: 4,
            requests: 24,
            workers: 2,
            unique_kernels: 12,
            cold: phase(12, 0),
            warm: phase(24, 12),
            identical_replay: true,
        }
    }

    #[test]
    fn clean_report_passes_check_and_projects_stably() {
        let report = sample();
        report.check().expect("invariants hold");
        let stable = report.to_stable_json();
        assert!(stable.contains("\"warm_hit_rate_pct\": 100"));
        assert!(stable.contains("\"cold_conserved\": true"));
        assert!(stable.contains("\"disk_survived_restart\": true"));
        assert!(!stable.contains("wall_seconds"), "stable is wall-free");
        assert!(!stable.contains("throughput"), "stable is wall-free");
    }

    #[test]
    fn broken_invariants_fail_check() {
        let mut report = sample();
        report.warm.cache_hits = 23;
        assert!(report.check().unwrap_err().contains("hit rate"));
        let mut report = sample();
        report.cold.received = 25;
        assert!(report.check().unwrap_err().contains("conservation"));
        let mut report = sample();
        report.identical_replay = false;
        assert!(report.check().unwrap_err().contains("byte-identical"));
        let mut report = sample();
        report.warm.disk_hits = 0;
        assert!(report.check().unwrap_err().contains("disk cache"));
    }

    #[test]
    fn baseline_gate_compares_shape_not_wall_clocks() {
        let report = sample();
        report
            .check_against_baseline(&report.to_json())
            .expect("self-baseline passes");
        let other = report
            .to_json()
            .replace("\"requests\": 24", "\"requests\": 12");
        assert!(report.check_against_baseline(&other).is_err());
    }

    #[test]
    fn report_json_parses_and_carries_both_phases() {
        let doc = parse(&sample().to_json()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "panorama-serve-bench-v1"
        );
        assert_eq!(
            doc.get("cold")
                .unwrap()
                .get("ok")
                .unwrap()
                .as_f64()
                .unwrap() as u64,
            24
        );
        assert!(doc.get("identical_replay").unwrap().as_bool().unwrap());
    }

    #[test]
    fn request_mix_is_deterministic_and_cycles() {
        assert_eq!(request_body(0), request_body(12));
        assert_ne!(request_body(0), request_body(1));
        assert!(request_body(3).contains("\"mapper\":\"ultrafast\""));
    }
}
