//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§4).
//!
//! Each generator returns the rendered table as a `String`, so integration
//! tests can assert on structure while the `cargo bench` targets print it.
//! The **profile** controls scale:
//!
//! * default — the *scaled* profile: kernels at roughly a third of the
//!   paper's node counts on an 8×8 CGRA (2×2 clusters of 4×4), so the full
//!   suite regenerates in minutes on one core;
//! * `PANORAMA_PAPER_SCALE=1` — the paper's setting: ~430-node kernels on
//!   the 16×16 CGRA with 4×4 clusters (hours of compute, like the paper's
//!   Xeon runs).
//!
//! Table/figure index (see DESIGN.md §4): [`table1a`], [`table1b`],
//! [`fig5`], [`fig7`], [`fig8`], [`fig9`], plus the [`ablations`] module
//! for the design-choice studies called out in DESIGN.md §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
mod experiments;
mod format;
pub mod perf;
pub mod serveload;

pub use experiments::{fig5, fig7, fig8, fig9, table1a, table1b};
pub use format::Table;
pub use perf::{calibration_scale, BenchMapper, BenchOptions, BenchReport, KernelResult};
pub use serveload::{run_serve_load, PhaseReport, ServeLoadOptions, ServeLoadReport};

use panorama_arch::CgraConfig;
use panorama_dfg::KernelScale;
use std::time::Duration;

/// The evaluation profile: architecture sizes, kernel scale, per-mapping
/// time budget.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Human-readable profile name, printed in every table header.
    pub name: &'static str,
    /// Main CGRA (Figures 7, 9; Tables 1a).
    pub cgra: CgraConfig,
    /// Smaller CGRA for the Figure 8 scaling comparison.
    pub small_cgra: CgraConfig,
    /// Kernel generation scale.
    pub scale: KernelScale,
    /// Wall-clock budget per SPR\* mapping attempt.
    pub spr_budget: Duration,
}

/// Resolves the active profile from `PANORAMA_PAPER_SCALE`.
pub fn profile() -> Profile {
    if std::env::var_os("PANORAMA_PAPER_SCALE").is_some() {
        Profile {
            name: "paper (16x16 CGRA, ~430-node kernels)",
            cgra: CgraConfig::paper_16x16(),
            small_cgra: CgraConfig::paper_9x9(),
            scale: KernelScale::Paper,
            spr_budget: Duration::from_secs(1800),
        }
    } else {
        Profile {
            name: "scaled (8x8 CGRA, ~1/3-size kernels)",
            cgra: CgraConfig::scaled_8x8(),
            // the scaled kernels are sized to *fill* the 8x8 array (as the
            // paper's unrolled kernels fill the 16x16); the small point of
            // the scaling comparison is a 4x4 with 2x2 clusters
            small_cgra: CgraConfig {
                rows: 4,
                cols: 4,
                cluster_rows: 2,
                cluster_cols: 2,
                ..CgraConfig::paper_16x16()
            },
            scale: KernelScale::Scaled,
            spr_budget: Duration::from_secs(60),
        }
    }
}

/// Resolves a requested worker-pool size: `0` means one per available
/// core, and the pool never exceeds the number of work items.
pub fn pool_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, work_items.max(1))
}

/// Geometric mean of positive values; 0 when empty or any value is 0.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_scaled() {
        // NB: assumes the test environment does not set PANORAMA_PAPER_SCALE
        let p = profile();
        assert_eq!(p.cgra.rows, 8);
        assert_eq!(p.scale, KernelScale::Scaled);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
    }
}
