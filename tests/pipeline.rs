//! End-to-end integration tests: the full PANORAMA pipeline across crates,
//! on real kernels, with independent mapping verification.

use panorama::{Panorama, PanoramaConfig, PanoramaError};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_mapper::{SprMapper, UltraFastMapper};

fn cgra() -> Cgra {
    Cgra::new(CgraConfig::scaled_8x8()).expect("preset is valid")
}

#[test]
fn every_kernel_compiles_guided_with_spr_at_tiny_scale() {
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = SprMapper::default();
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let report = compiler
            .compile(&dfg, &cgra, &mapper)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        report
            .mapping()
            .verify(&dfg, &cgra)
            .unwrap_or_else(|e| panic!("{id}: invalid mapping: {e}"));
        assert!(report.mapping().qom() > 0.0, "{id}");
    }
}

#[test]
fn every_kernel_compiles_guided_with_ultrafast_at_tiny_scale() {
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = UltraFastMapper::default();
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let report = compiler
            .compile(&dfg, &cgra, &mapper)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        report
            .mapping()
            .verify(&dfg, &cgra)
            .unwrap_or_else(|e| panic!("{id}: invalid mapping: {e}"));
    }
}

#[test]
fn pipeline_is_deterministic() {
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::Edn, KernelScale::Tiny);
    let a = compiler
        .compile(&dfg, &cgra, &SprMapper::default())
        .unwrap();
    let b = compiler
        .compile(&dfg, &cgra, &SprMapper::default())
        .unwrap();
    assert_eq!(a.mapping().ii(), b.mapping().ii());
    for op in dfg.op_ids() {
        assert_eq!(a.mapping().pe_of(op), b.mapping().pe_of(op));
        assert_eq!(a.mapping().time_of(op), b.mapping().time_of(op));
    }
}

#[test]
fn guided_mapping_respects_cluster_restriction() {
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::Conv2d, KernelScale::Tiny);
    let report = compiler
        .compile(&dfg, &cgra, &SprMapper::default())
        .unwrap();
    let plan = report.plan().expect("guided run has a plan");
    for op in dfg.op_ids() {
        let cluster = cgra.cluster_of(report.mapping().pe_of(op));
        assert!(
            plan.restriction().allows(op, cluster),
            "op {op} placed outside its allowed clusters"
        );
    }
}

#[test]
fn plan_partition_covers_every_op_exactly_once() {
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::KMeansClustering, KernelScale::Scaled);
    let plan = compiler.plan(&dfg, &cgra).unwrap();
    // every DFG op appears in exactly one CDG cluster's member list
    let mut seen = vec![false; dfg.num_ops()];
    for c in plan.cdg().cluster_ids() {
        for &op in plan.cdg().members(c) {
            assert!(!seen[op.index()], "op {op} in two clusters");
            seen[op.index()] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "some op not clustered");
}

#[test]
fn single_cluster_cgra_rejects_planning() {
    // a 1x1 cluster grid cannot host a divide step (needs >= 2 rows)
    let cgra = Cgra::new(CgraConfig::small_4x4()).expect("valid");
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
    // planning still works by clamping r to 2 (two clusters on one row is
    // not expressible: grid is 1x1, so cluster mapping must fail)
    match compiler.plan(&dfg, &cgra) {
        Err(PanoramaError::ClusterMapping(_)) | Err(PanoramaError::Cluster(_)) => {}
        Ok(plan) => {
            // acceptable alternative: a degenerate but consistent plan
            assert_eq!(plan.cluster_map().grid(), (1, 1));
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn baseline_and_guided_both_verify_on_scaled_kernel() {
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Scaled);
    let mapper = SprMapper::default();
    let base = compiler.compile_baseline(&dfg, &cgra, &mapper).unwrap();
    base.mapping().verify(&dfg, &cgra).unwrap();
    let pan = compiler.compile(&dfg, &cgra, &mapper).unwrap();
    pan.mapping().verify(&dfg, &cgra).unwrap();
    // the divide step should never *hurt* cordic (the paper's headline)
    assert!(pan.mapping().ii() <= base.mapping().ii());
}
