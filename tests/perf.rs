//! Determinism tests for the parallel candidate portfolio (DESIGN.md §9).
//!
//! The pipeline's contract is that `PanoramaConfig::threads` only changes
//! wall-clock, never the result: the shared best-II bound prunes only
//! candidates that cannot win the final reduction, and the reduction key
//! `(II, routing complexity, candidate rank)` is unique per candidate. These
//! tests compile real kernels at thread counts 1, 2 and 4 and require the
//! resulting reports to be observably identical — same II, same per-op
//! placement and schedule, same winning partition.

use panorama::{BatchExecutor, CompileReport, Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, Dfg, KernelId, KernelScale};
use panorama_mapper::{LowerLevelMapper, SprMapper, UltraFastMapper, WarmStartCache};
use panorama_trace::{RecordingSink, SpanCollector, TraceReport, Tracer};
use std::time::{Duration, Instant};

/// Everything observable about a compile, flattened for equality checks.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    ii: usize,
    placement: Vec<(usize, usize)>,
    partition_labels: Vec<usize>,
}

fn fingerprint(dfg: &Dfg, report: &CompileReport) -> Fingerprint {
    let mapping = report.mapping();
    Fingerprint {
        ii: mapping.ii(),
        placement: dfg
            .op_ids()
            .map(|op| (mapping.pe_of(op).index(), mapping.time_of(op)))
            .collect(),
        partition_labels: report
            .plan()
            .map(|plan| plan.partition().labels().to_vec())
            .unwrap_or_default(),
    }
}

fn compile_at<M: LowerLevelMapper>(
    dfg: &Dfg,
    cgra: &Cgra,
    mapper: &M,
    threads: usize,
) -> Fingerprint {
    let panorama = Panorama::new(PanoramaConfig {
        threads,
        ..PanoramaConfig::default()
    });
    let report = panorama
        .compile(dfg, cgra, mapper)
        .unwrap_or_else(|e| panic!("compile failed at {threads} threads: {e}"));
    fingerprint(dfg, &report)
}

#[test]
fn ultrafast_portfolio_is_thread_count_invariant_on_all_kernels() {
    for (name, config) in [
        ("4x4", CgraConfig::small_4x4()),
        ("8x8", CgraConfig::scaled_8x8()),
    ] {
        let cgra = Cgra::new(config).unwrap();
        let mapper = UltraFastMapper::default();
        for id in KernelId::ALL {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            let base = compile_at(&dfg, &cgra, &mapper, 1);
            for threads in [2, 4] {
                let got = compile_at(&dfg, &cgra, &mapper, threads);
                assert_eq!(
                    base, got,
                    "{id} on {name}: report diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn spr_portfolio_is_thread_count_invariant() {
    // SPR* is the expensive mapper, so cover a representative subset: a
    // pipeline kernel, a recurrence-bound kernel and a wide one.
    let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
    let mapper = SprMapper::default();
    for id in [KernelId::Fir, KernelId::Cordic, KernelId::IdctRows] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let base = compile_at(&dfg, &cgra, &mapper, 1);
        for threads in [2, 4] {
            let got = compile_at(&dfg, &cgra, &mapper, threads);
            assert_eq!(base, got, "{id}: report diverged at {threads} threads");
        }
    }
}

#[test]
fn batch_executor_is_thread_count_invariant_across_the_suite() {
    // The suite-level executor shares one pool between every kernel's
    // candidate portfolio; results must still be bit-identical to the
    // single-threaded compile at any worker count.
    let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
    let mapper = UltraFastMapper::default();
    let dfgs: Vec<Dfg> = KernelId::ALL
        .iter()
        .map(|&id| kernels::generate(id, KernelScale::Tiny))
        .collect();
    let base: Vec<Fingerprint> = dfgs
        .iter()
        .map(|d| compile_at(d, &cgra, &mapper, 1))
        .collect();
    for threads in [1, 2, 4, 8] {
        let got: Vec<Fingerprint> = BatchExecutor::scope(threads, |exec| {
            exec.run_batch(dfgs.len(), |exec, j| {
                let panorama = Panorama::new(PanoramaConfig {
                    threads,
                    ..PanoramaConfig::default()
                });
                let report = panorama
                    .compile_batch_traced(exec, &dfgs[j], &cgra, &mapper, &Tracer::disabled(), None)
                    .unwrap_or_else(|e| panic!("batch compile failed at {threads} threads: {e}"));
                fingerprint(&dfgs[j], &report)
            })
        });
        assert_eq!(base, got, "suite diverged at {threads} threads");
    }
}

#[test]
fn warm_start_remap_is_verified_equivalent_to_cold() {
    // A warm remap may legally differ from the cold mapping, but it must
    // be a *valid* mapping of the same graph: the independent verifier and
    // the cycle-accurate simulator are the equivalence oracles, and the
    // warm II must never exceed the cold II it was seeded from.
    let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
    let cache = WarmStartCache::default();
    let warm_mapper = SprMapper::default().with_warm_cache(cache.clone());
    let cold_mapper = SprMapper::default();
    for id in [KernelId::Fir, KernelId::Cordic, KernelId::IdctRows] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let cold = cold_mapper.map(&dfg, &cgra, None).unwrap();
        cache.record(&dfg, &cgra, &cold);
        let warm = warm_mapper.map(&dfg, &cgra, None).unwrap();
        warm.verify(&dfg, &cgra)
            .unwrap_or_else(|e| panic!("{id}: warm mapping failed verification: {e}"));
        let sim = panorama::sim::simulate(&dfg, &cgra, &warm, 4)
            .unwrap_or_else(|e| panic!("{id}: warm mapping failed simulation: {e}"));
        assert!(
            sim.checked_deliveries > 0,
            "{id}: simulator checked nothing"
        );
        assert!(warm.ii() <= cold.ii(), "{id}: warm II worse than cold");
    }
    assert_eq!(cache.hits(), 3, "every warm remap should hit the cache");
}

/// Compiles with a recording tracer and returns both the mapping
/// fingerprint and the assembled trace report.
fn traced_compile_at<M: LowerLevelMapper>(
    dfg: &Dfg,
    cgra: &Cgra,
    mapper: &M,
    threads: usize,
) -> (Fingerprint, TraceReport) {
    let sink = RecordingSink::shared();
    let tracer = Tracer::new(sink.clone());
    let panorama = Panorama::new(PanoramaConfig {
        threads,
        ..PanoramaConfig::default()
    });
    let report = panorama
        .compile_traced(dfg, cgra, mapper, &tracer)
        .unwrap_or_else(|e| panic!("traced compile failed at {threads} threads: {e}"));
    let trace = TraceReport {
        kernel: dfg.name().to_string(),
        arch: "4x4".to_string(),
        mapper: mapper.name().to_string(),
        threads,
        wall_ns: report.total_time().as_nanos() as u64,
        events: sink.take(),
    };
    (fingerprint(dfg, &report), trace)
}

#[test]
fn tracing_is_thread_count_invariant_and_schema_valid() {
    // Recording must not perturb the portfolio (same fingerprint as the
    // untraced contract), the stable-event digest must be identical at 1, 2
    // and 4 threads, and the exported JSON must pass every TRACE* lint.
    let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
    let mapper = UltraFastMapper::default();
    for id in [KernelId::Fir, KernelId::Cordic, KernelId::IdctRows] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let (base_fp, base_trace) = traced_compile_at(&dfg, &cgra, &mapper, 1);
        assert!(
            !base_trace.events.is_empty(),
            "{id}: recording tracer captured nothing"
        );
        let mut diags = panorama_lint::Diagnostics::new();
        panorama_lint::lint_trace_json(&base_trace.to_json(), &mut diags);
        assert!(!diags.has_errors(), "{id}:\n{}", diags.render_human());
        for threads in [2, 4] {
            let (fp, trace) = traced_compile_at(&dfg, &cgra, &mapper, threads);
            assert_eq!(
                base_fp, fp,
                "{id}: traced mapping diverged at {threads} threads"
            );
            assert_eq!(
                base_trace.deterministic_signature(),
                trace.deterministic_signature(),
                "{id}: stable trace digest diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn disabled_collector_adds_no_measurable_overhead() {
    // The disabled-path contract: start/record on a disabled collector are
    // single-branch no-ops that never read the clock, so a hot loop with
    // them interleaved must not be measurably slower than the bare loop.
    // The threshold is deliberately generous to stay robust on noisy CI.
    const ITERS: u64 = 2_000_000;
    let lcg = |acc: u64, i: u64| {
        acc.wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(i | 1)
    };

    let mut acc = 0u64;
    let t = Instant::now();
    for i in 0..ITERS {
        acc = lcg(acc, i);
    }
    let bare = t.elapsed();
    std::hint::black_box(acc);

    let mut col = SpanCollector::disabled();
    let mut acc = 0u64;
    let t = Instant::now();
    for i in 0..ITERS {
        let span = col.start();
        acc = lcg(acc, i);
        col.record("hot", span, &[("i", 0)]);
    }
    let traced = t.elapsed();
    std::hint::black_box(acc);
    assert_eq!(col.dropped(), 0, "disabled collector must not buffer");

    let ceiling = bare * 3 + Duration::from_millis(50);
    assert!(
        traced <= ceiling,
        "disabled tracing cost too much: bare {bare:?}, traced {traced:?}"
    );
}

#[test]
fn bench_harness_reports_identical_results() {
    // The harness's own phase comparison (parallel vs sequential re-run)
    // must agree on every kernel; this is the same check `panorama bench`
    // enforces before writing a baseline.
    let report = panorama_bench::perf::run(&panorama_bench::BenchOptions {
        threads: 3,
        ..panorama_bench::BenchOptions::default()
    })
    .expect("bench suite compiles");
    for k in &report.kernels {
        assert!(k.identical, "{} on {} diverged", k.kernel, k.preset);
        assert!(k.ii >= k.mii, "{} on {}: II below MII", k.kernel, k.preset);
    }
}
