//! Determinism tests for the parallel candidate portfolio (DESIGN.md §9).
//!
//! The pipeline's contract is that `PanoramaConfig::threads` only changes
//! wall-clock, never the result: the shared best-II bound prunes only
//! candidates that cannot win the final reduction, and the reduction key
//! `(II, routing complexity, candidate rank)` is unique per candidate. These
//! tests compile real kernels at thread counts 1, 2 and 4 and require the
//! resulting reports to be observably identical — same II, same per-op
//! placement and schedule, same winning partition.

use panorama::{CompileReport, Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, Dfg, KernelId, KernelScale};
use panorama_mapper::{LowerLevelMapper, SprMapper, UltraFastMapper};

/// Everything observable about a compile, flattened for equality checks.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    ii: usize,
    placement: Vec<(usize, usize)>,
    partition_labels: Vec<usize>,
}

fn fingerprint(dfg: &Dfg, report: &CompileReport) -> Fingerprint {
    let mapping = report.mapping();
    Fingerprint {
        ii: mapping.ii(),
        placement: dfg
            .op_ids()
            .map(|op| (mapping.pe_of(op).index(), mapping.time_of(op)))
            .collect(),
        partition_labels: report
            .plan()
            .map(|plan| plan.partition().labels().to_vec())
            .unwrap_or_default(),
    }
}

fn compile_at<M: LowerLevelMapper>(
    dfg: &Dfg,
    cgra: &Cgra,
    mapper: &M,
    threads: usize,
) -> Fingerprint {
    let panorama = Panorama::new(PanoramaConfig {
        threads,
        ..PanoramaConfig::default()
    });
    let report = panorama
        .compile(dfg, cgra, mapper)
        .unwrap_or_else(|e| panic!("compile failed at {threads} threads: {e}"));
    fingerprint(dfg, &report)
}

#[test]
fn ultrafast_portfolio_is_thread_count_invariant_on_all_kernels() {
    for (name, config) in [
        ("4x4", CgraConfig::small_4x4()),
        ("8x8", CgraConfig::scaled_8x8()),
    ] {
        let cgra = Cgra::new(config).unwrap();
        let mapper = UltraFastMapper::default();
        for id in KernelId::ALL {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            let base = compile_at(&dfg, &cgra, &mapper, 1);
            for threads in [2, 4] {
                let got = compile_at(&dfg, &cgra, &mapper, threads);
                assert_eq!(
                    base, got,
                    "{id} on {name}: report diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn spr_portfolio_is_thread_count_invariant() {
    // SPR* is the expensive mapper, so cover a representative subset: a
    // pipeline kernel, a recurrence-bound kernel and a wide one.
    let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
    let mapper = SprMapper::default();
    for id in [KernelId::Fir, KernelId::Cordic, KernelId::IdctRows] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let base = compile_at(&dfg, &cgra, &mapper, 1);
        for threads in [2, 4] {
            let got = compile_at(&dfg, &cgra, &mapper, threads);
            assert_eq!(base, got, "{id}: report diverged at {threads} threads");
        }
    }
}

#[test]
fn bench_harness_reports_identical_results() {
    // The harness's own phase comparison (parallel vs sequential re-run)
    // must agree on every kernel; this is the same check `panorama bench`
    // enforces before writing a baseline.
    let report = panorama_bench::perf::run(&panorama_bench::BenchOptions {
        threads: 3,
        ..panorama_bench::BenchOptions::default()
    })
    .expect("bench suite compiles");
    for k in &report.kernels {
        assert!(k.identical, "{} on {} diverged", k.kernel, k.preset);
        assert!(k.ii >= k.mii, "{} on {}: II below MII", k.kernel, k.preset);
    }
}
