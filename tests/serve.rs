//! End-to-end tests of the `panorama-serve` daemon: bit-identity with the
//! offline CLI under concurrency, bounded-queue shedding, cooperative
//! deadline cancellation, graceful drain, and metrics validity.

use panorama::{CancelToken, Panorama, PanoramaConfig, PanoramaError};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_lint::{lint_serve_json, Diagnostics};
use panorama_mapper::{LowerLevelMapper, SearchControl, SprMapper};
use panorama_serve::{ServeConfig, Server};
use panorama_trace::json::{self, escape, Json};
use panorama_trace::{RecordingSink, Tracer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;
use std::time::{Duration, Instant};

/// A started in-process daemon plus the thread running it.
struct Daemon {
    addr: SocketAddr,
    drain: panorama_serve::DrainHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(config: ServeConfig) -> Daemon {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let drain = server.drain_handle();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        drain,
        thread,
    }
}

impl Daemon {
    fn drain_and_join(self) {
        self.drain.drain();
        self.thread.join().expect("server thread").expect("run ok");
    }
}

/// One HTTP request over a fresh connection; returns `(status, headers,
/// body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), payload.to_string())
}

fn compile_body(kernel: &str, extra: &str) -> String {
    format!(
        "{{\"kernel\":\"{}\",\"arch\":\"8x8\",\"scale\":\"tiny\"{extra}}}",
        escape(kernel)
    )
}

fn metrics(addr: SocketAddr) -> Json {
    let (status, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    json::parse(&body).expect("metrics parses")
}

fn metric(doc: &Json, section: &str, field: &str) -> u64 {
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .expect("metric present") as u64
}

/// Polls `/metrics` until `pred` holds (the daemon's counters are exact,
/// so this is synchronisation, not a tolerance).
fn wait_for(addr: SocketAddr, what: &str, pred: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if pred(&metrics(addr)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole acceptance test: N concurrent clients compiling the whole
/// 12-kernel suite get byte-identical responses to the offline
/// `panorama compile --json` CLI, at every worker count, including replays
/// served from the result cache.
#[test]
fn concurrent_compiles_match_cli_bit_for_bit() {
    // Offline reference outputs, once per kernel.
    let expected: Vec<(String, String)> = KernelId::ALL
        .iter()
        .map(|id| {
            let out = Command::new(env!("CARGO_BIN_EXE_panorama"))
                .args([
                    "compile",
                    "--dfg",
                    id.name(),
                    "--arch",
                    "8x8",
                    "--scale",
                    "tiny",
                    "--json",
                ])
                .output()
                .expect("run CLI");
            assert!(out.status.success(), "CLI failed for {}", id.name());
            (
                id.name().to_string(),
                String::from_utf8(out.stdout).expect("utf-8"),
            )
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let daemon = start(ServeConfig {
            workers,
            queue_depth: 16,
            ..ServeConfig::default()
        });
        for round in 0..2 {
            let responses: Vec<_> = expected
                .iter()
                .map(|(kernel, want)| {
                    let kernel = kernel.clone();
                    let want = want.clone();
                    let addr = daemon.addr;
                    std::thread::spawn(move || {
                        let (status, _, body) =
                            http(addr, "POST", "/compile", &compile_body(&kernel, ""));
                        assert_eq!(status, 200, "{kernel}: {body}");
                        assert_eq!(
                            body, want,
                            "{kernel} differs from CLI (workers {workers}, round {round})"
                        );
                    })
                })
                .collect();
            for r in responses {
                r.join().expect("client thread");
            }
        }
        // Round two was answered from the result cache.
        let m = metrics(daemon.addr);
        assert_eq!(metric(&m, "requests", "received"), 24);
        assert_eq!(metric(&m, "requests", "completed"), 24);
        assert_eq!(metric(&m, "result_cache", "hits"), 12);
        assert_eq!(metric(&m, "result_cache", "misses"), 12);
        daemon.drain_and_join();
    }
}

/// Satellite: a saturated bounded queue sheds with `503 Retry-After`
/// instead of growing, and the shed shows up in the metrics.
#[test]
fn saturated_queue_sheds_with_503() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    // A slow, cancellable occupant: baseline mapping skips the (fast,
    // non-cancellable) partition phase, so the deadline caps the test's
    // runtime without masking the saturation window.
    let slow = "{\"kernel\":\"edn\",\"arch\":\"8x8\",\"scale\":\"scaled\",\
                 \"baseline\":true,\"deadline_ms\":20000}"
        .to_string();
    let spawn_slow = |tag: u64| {
        let addr = daemon.addr;
        // Distinct max_ii per request so none is a result-cache replay.
        let body = slow.replace(
            "\"baseline\":true",
            &format!("\"baseline\":true,\"max_ii\":{}", 30 + tag),
        );
        std::thread::spawn(move || http(addr, "POST", "/compile", &body).0)
    };
    let first = spawn_slow(0);
    wait_for(daemon.addr, "first job in flight", |m| {
        metric(m, "queue", "in_flight") == 1
    });
    let second = spawn_slow(1);
    wait_for(daemon.addr, "second job queued", |m| {
        metric(m, "queue", "depth") == 1
    });
    // Worker busy + queue full: the third must be shed, never enqueued.
    let (status, head, body) = http(daemon.addr, "POST", "/compile", &slow);
    assert_eq!(status, 503, "{body}");
    assert!(
        head.contains("Retry-After: 1"),
        "missing Retry-After:\n{head}"
    );
    assert!(body.contains("\"error\":\"overloaded\""), "{body}");
    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "requests", "shed"), 1);
    // The occupants finish (mapped or deadline-cancelled — both fine).
    for t in [first, second] {
        let status = t.join().expect("slow client");
        assert!(status == 200 || status == 504, "unexpected status {status}");
    }
    daemon.drain_and_join();
}

/// Satellite: a request that exceeds its deadline comes back as a
/// cancelled-error payload and is counted as cancelled, not failed.
#[test]
fn deadline_returns_cancelled_payload() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        deadline: Some(Duration::from_millis(100)),
        ..ServeConfig::default()
    });
    let body = compile_body("edn", ",\"baseline\":true")
        .replace("\"scale\":\"tiny\"", "\"scale\":\"scaled\"");
    let (status, _, payload) = http(daemon.addr, "POST", "/compile", &body);
    assert_eq!(status, 504, "{payload}");
    let doc = json::parse(&payload).expect("error payload parses");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("panorama-error-v1")
    );
    assert_eq!(doc.get("error").unwrap().as_str(), Some("cancelled"));
    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "requests", "cancelled"), 1);
    assert_eq!(metric(&m, "requests", "failed"), 0);
    daemon.drain_and_join();
}

/// The cancellation token actually stops the pipeline early, verified via
/// trace event counts: a fired token yields `Cancelled` with strictly
/// fewer events than the full run and no `map` phase record, and at the
/// mapper level the II search emits an abort event instead of mapping.
#[test]
fn cancel_token_stops_the_pipeline_early() {
    let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
    let cgra = panorama_arch::Cgra::new(panorama_arch::CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = SprMapper::default();

    let full_sink = RecordingSink::shared();
    let report = compiler
        .compile_baseline_traced_with_cancel(
            &dfg,
            &cgra,
            &mapper,
            &Tracer::new(full_sink.clone()),
            None,
        )
        .expect("uncancelled baseline compile succeeds");
    report.mapping().verify(&dfg, &cgra).expect("valid mapping");
    let full_events = full_sink.take();

    let token = CancelToken::new();
    token.cancel(); // fired before the pipeline starts
    let cancelled_sink = RecordingSink::shared();
    let err = compiler
        .compile_baseline_traced_with_cancel(
            &dfg,
            &cgra,
            &mapper,
            &Tracer::new(cancelled_sink.clone()),
            Some(&token),
        )
        .expect_err("fired token must cancel");
    assert!(matches!(err, PanoramaError::Cancelled), "{err}");
    let cancelled_events = cancelled_sink.take();
    assert!(
        cancelled_events.len() < full_events.len(),
        "cancelled run recorded {} events, full run {}",
        cancelled_events.len(),
        full_events.len()
    );
    assert!(
        !cancelled_events.iter().any(|e| e.phase == "map"),
        "cancelled run must not reach the map phase"
    );

    // Mapper level: the II search observes the token at its loop head and
    // aborts with an event instead of attempting placement.
    let sink = RecordingSink::shared();
    let tracer = Tracer::new(sink.clone());
    let mut col = tracer.collector(0);
    let control = SearchControl::unbounded().with_cancel(token.clone());
    let err = mapper
        .map_traced(&dfg, &cgra, None, Some(&control), &mut col)
        .expect_err("fired token must abort the II search");
    assert!(err.cancelled, "{err}");
    tracer.submit(vec![col]);
    let events = sink.take();
    assert!(
        events.iter().any(|e| e.phase.ends_with(".abort")),
        "no abort event: {:?}",
        events.iter().map(|e| e.phase).collect::<Vec<_>>()
    );
}

/// Satellite: graceful drain finishes in-flight work, then `run` returns
/// and the port stops accepting.
#[test]
fn drain_finishes_inflight_work_then_exits() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let inflight = {
        let addr = daemon.addr;
        std::thread::spawn(move || http(addr, "POST", "/compile", &compile_body("fir", "")))
    };
    wait_for(daemon.addr, "compile received", |m| {
        metric(m, "requests", "received") >= 1
    });
    let (status, _, body) = http(daemon.addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("draining"), "{body}");
    // The in-flight compile still completes with a real response.
    let (status, _, body) = inflight.join().expect("in-flight client");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"schema\":\"panorama-compile-v1\""));
    let addr = daemon.addr;
    daemon
        .thread
        .join()
        .expect("server thread")
        .expect("clean exit");
    // Drained: the listener is gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

/// Satellite: `/metrics` snapshots taken throughout a serving session pass
/// the SERVE001–003 lints, individually and as a monotone sequence.
#[test]
fn metrics_snapshots_pass_serve_lints() {
    let daemon = start(ServeConfig {
        workers: 2,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let mut snapshots = Vec::new();
    let mut snap = |addr| {
        let (status, _, body) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        snapshots.push(body.trim().to_string());
    };
    snap(daemon.addr);
    for kernel in ["fir", "cordic"] {
        let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body(kernel, ""));
        assert_eq!(status, 200);
        snap(daemon.addr);
    }
    // A replay (cache hit) and a lint round-trip.
    let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body("fir", ""));
    assert_eq!(status, 200);
    let (status, _, lint_response) = http(
        daemon.addr,
        "POST",
        "/lint",
        "{\"kernel\":\"fir\",\"arch\":\"8x8\",\"scale\":\"tiny\"}",
    );
    assert_eq!(status, 200, "{lint_response}");
    json::parse(&lint_response).expect("lint response parses");
    snap(daemon.addr);
    daemon.drain_and_join();

    let mut diags = Diagnostics::new();
    lint_serve_json(&format!("[{}]", snapshots.join(",")), &mut diags);
    assert_eq!(
        diags.iter().count(),
        0,
        "lint findings: {:?}",
        diags
            .iter()
            .map(|d| (d.code, d.message.clone()))
            .collect::<Vec<_>>()
    );
}

/// Satellite: the MRRG cache is shared across requests for the same
/// architecture — repeat compiles hit it instead of rebuilding graphs.
#[test]
fn mrrg_cache_is_reused_across_requests() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body("fir", ""));
    assert_eq!(status, 200);
    let first = metric(&metrics(daemon.addr), "mrrg_cache", "misses");
    assert!(first > 0, "first compile must build MRRGs");
    // Different kernel, same architecture: IIs overlap, so at least one
    // lookup must now hit the shared cache.
    let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body("cordic", ""));
    assert_eq!(status, 200);
    let m = metrics(daemon.addr);
    assert!(
        metric(&m, "mrrg_cache", "hits") > 0,
        "second compile on the same arch should hit the MRRG cache"
    );
    daemon.drain_and_join();
}

/// Malformed requests and unknown routes get structured errors, and the
/// loopback guard is wired (every local connection *is* loopback, so the
/// allowed path is what's testable here; the 403 arm is unit-logic).
#[test]
fn bad_requests_get_structured_errors() {
    let daemon = start(ServeConfig::default());
    let (status, _, body) = http(daemon.addr, "POST", "/compile", "{\"kernel\":\"nope\"}");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown kernel"), "{body}");
    let (status, _, _) = http(daemon.addr, "POST", "/compile", "not json");
    assert_eq!(status, 400);
    let (status, _, _) = http(daemon.addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = http(daemon.addr, "GET", "/compile", "");
    assert_eq!(status, 405);
    // An infeasible compile is a 422, not a hang or a 500: fir at scaled
    // size cannot fit the 6x1 linear array.
    let (status, _, body) = http(
        daemon.addr,
        "POST",
        "/compile",
        "{\"kernel\":\"fir\",\"arch\":\"6x1\",\"scale\":\"scaled\",\"max_ii\":4}",
    );
    assert_eq!(status, 422, "{body}");
    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "requests", "failed"), 1);
    daemon.drain_and_join();
}
