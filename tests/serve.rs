//! End-to-end tests of the `panorama-serve` daemon: bit-identity with the
//! offline CLI under concurrency, bounded-queue shedding, cooperative
//! deadline cancellation, graceful drain, and metrics validity.

use panorama::{CancelToken, Panorama, PanoramaConfig, PanoramaError};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_lint::{lint_serve_json, Diagnostics};
use panorama_mapper::{LowerLevelMapper, SearchControl, SprMapper};
use panorama_serve::{ServeConfig, Server};
use panorama_trace::json::{self, escape, Json};
use panorama_trace::{RecordingSink, Tracer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;
use std::time::{Duration, Instant};

/// A started in-process daemon plus the thread running it.
struct Daemon {
    addr: SocketAddr,
    drain: panorama_serve::DrainHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(config: ServeConfig) -> Daemon {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let drain = server.drain_handle();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        drain,
        thread,
    }
}

impl Daemon {
    fn drain_and_join(self) {
        self.drain.drain();
        self.thread.join().expect("server thread").expect("run ok");
    }
}

/// One HTTP request over a fresh connection; returns `(status, headers,
/// body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    http_with_headers(addr, method, path, &[], body)
}

/// Like [`http`] but with extra request header lines (no trailing CRLF).
fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[&str],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .unwrap();
    let extra = extra.iter().map(|h| format!("{h}\r\n")).collect::<String>();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), payload.to_string())
}

fn compile_body(kernel: &str, extra: &str) -> String {
    format!(
        "{{\"kernel\":\"{}\",\"arch\":\"8x8\",\"scale\":\"tiny\"{extra}}}",
        escape(kernel)
    )
}

fn metrics(addr: SocketAddr) -> Json {
    let (status, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    json::parse(&body).expect("metrics parses")
}

fn metric(doc: &Json, section: &str, field: &str) -> u64 {
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .expect("metric present") as u64
}

/// Polls `/metrics` until `pred` holds (the daemon's counters are exact,
/// so this is synchronisation, not a tolerance).
fn wait_for(addr: SocketAddr, what: &str, pred: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if pred(&metrics(addr)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole acceptance test: N concurrent clients compiling the whole
/// 12-kernel suite get byte-identical responses to the offline
/// `panorama compile --json` CLI, at every worker count, including replays
/// served from the result cache.
#[test]
fn concurrent_compiles_match_cli_bit_for_bit() {
    // Offline reference outputs, once per kernel.
    let expected: Vec<(String, String)> = KernelId::ALL
        .iter()
        .map(|id| {
            let out = Command::new(env!("CARGO_BIN_EXE_panorama"))
                .args([
                    "compile",
                    "--dfg",
                    id.name(),
                    "--arch",
                    "8x8",
                    "--scale",
                    "tiny",
                    "--json",
                ])
                .output()
                .expect("run CLI");
            assert!(out.status.success(), "CLI failed for {}", id.name());
            (
                id.name().to_string(),
                String::from_utf8(out.stdout).expect("utf-8"),
            )
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let daemon = start(ServeConfig {
            workers,
            queue_depth: 16,
            ..ServeConfig::default()
        });
        for round in 0..2 {
            let responses: Vec<_> = expected
                .iter()
                .map(|(kernel, want)| {
                    let kernel = kernel.clone();
                    let want = want.clone();
                    let addr = daemon.addr;
                    std::thread::spawn(move || {
                        let (status, _, body) =
                            http(addr, "POST", "/compile", &compile_body(&kernel, ""));
                        assert_eq!(status, 200, "{kernel}: {body}");
                        assert_eq!(
                            body, want,
                            "{kernel} differs from CLI (workers {workers}, round {round})"
                        );
                    })
                })
                .collect();
            for r in responses {
                r.join().expect("client thread");
            }
        }
        // Round two was answered from the result cache.
        let m = metrics(daemon.addr);
        assert_eq!(metric(&m, "requests", "received"), 24);
        assert_eq!(metric(&m, "requests", "completed"), 24);
        assert_eq!(metric(&m, "result_cache", "hits"), 12);
        assert_eq!(metric(&m, "result_cache", "misses"), 12);
        daemon.drain_and_join();
    }
}

/// Satellite: a saturated bounded queue sheds with `503 Retry-After`
/// instead of growing, and the shed shows up in the metrics.
#[test]
fn saturated_queue_sheds_with_503() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    // A slow, cancellable occupant: baseline mapping skips the (fast,
    // non-cancellable) partition phase, so the deadline caps the test's
    // runtime without masking the saturation window.
    let slow = "{\"kernel\":\"edn\",\"arch\":\"8x8\",\"scale\":\"scaled\",\
                 \"baseline\":true,\"deadline_ms\":20000}"
        .to_string();
    let spawn_slow = |tag: u64| {
        let addr = daemon.addr;
        // Distinct max_ii per request so none is a result-cache replay.
        let body = slow.replace(
            "\"baseline\":true",
            &format!("\"baseline\":true,\"max_ii\":{}", 30 + tag),
        );
        std::thread::spawn(move || http(addr, "POST", "/compile", &body).0)
    };
    let first = spawn_slow(0);
    wait_for(daemon.addr, "first job in flight", |m| {
        metric(m, "queue", "in_flight") == 1
    });
    let second = spawn_slow(1);
    wait_for(daemon.addr, "second job queued", |m| {
        metric(m, "queue", "depth") == 1
    });
    // Worker busy + queue full: the third must be shed, never enqueued.
    let (status, head, body) = http(daemon.addr, "POST", "/compile", &slow);
    assert_eq!(status, 503, "{body}");
    assert!(
        head.contains("Retry-After: 1"),
        "missing Retry-After:\n{head}"
    );
    assert!(body.contains("\"error\":\"overloaded\""), "{body}");
    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "requests", "shed"), 1);
    // The occupants finish (mapped or deadline-cancelled — both fine).
    for t in [first, second] {
        let status = t.join().expect("slow client");
        assert!(status == 200 || status == 504, "unexpected status {status}");
    }
    daemon.drain_and_join();
}

/// Satellite: a request that exceeds its deadline comes back as a
/// cancelled-error payload and is counted as cancelled, not failed.
#[test]
fn deadline_returns_cancelled_payload() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        deadline: Some(Duration::from_millis(100)),
        ..ServeConfig::default()
    });
    let body = compile_body("edn", ",\"baseline\":true")
        .replace("\"scale\":\"tiny\"", "\"scale\":\"scaled\"");
    let (status, _, payload) = http(daemon.addr, "POST", "/compile", &body);
    assert_eq!(status, 504, "{payload}");
    let doc = json::parse(&payload).expect("error payload parses");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("panorama-error-v1")
    );
    assert_eq!(doc.get("error").unwrap().as_str(), Some("cancelled"));
    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "requests", "cancelled"), 1);
    assert_eq!(metric(&m, "requests", "failed"), 0);
    daemon.drain_and_join();
}

/// The cancellation token actually stops the pipeline early, verified via
/// trace event counts: a fired token yields `Cancelled` with strictly
/// fewer events than the full run and no `map` phase record, and at the
/// mapper level the II search emits an abort event instead of mapping.
#[test]
fn cancel_token_stops_the_pipeline_early() {
    let dfg = kernels::generate(KernelId::Fir, KernelScale::Tiny);
    let cgra = panorama_arch::Cgra::new(panorama_arch::CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = SprMapper::default();

    let full_sink = RecordingSink::shared();
    let report = compiler
        .compile_baseline_traced_with_cancel(
            &dfg,
            &cgra,
            &mapper,
            &Tracer::new(full_sink.clone()),
            None,
        )
        .expect("uncancelled baseline compile succeeds");
    report.mapping().verify(&dfg, &cgra).expect("valid mapping");
    let full_events = full_sink.take();

    let token = CancelToken::new();
    token.cancel(); // fired before the pipeline starts
    let cancelled_sink = RecordingSink::shared();
    let err = compiler
        .compile_baseline_traced_with_cancel(
            &dfg,
            &cgra,
            &mapper,
            &Tracer::new(cancelled_sink.clone()),
            Some(&token),
        )
        .expect_err("fired token must cancel");
    assert!(matches!(err, PanoramaError::Cancelled), "{err}");
    let cancelled_events = cancelled_sink.take();
    assert!(
        cancelled_events.len() < full_events.len(),
        "cancelled run recorded {} events, full run {}",
        cancelled_events.len(),
        full_events.len()
    );
    assert!(
        !cancelled_events.iter().any(|e| e.phase == "map"),
        "cancelled run must not reach the map phase"
    );

    // Mapper level: the II search observes the token at its loop head and
    // aborts with an event instead of attempting placement.
    let sink = RecordingSink::shared();
    let tracer = Tracer::new(sink.clone());
    let mut col = tracer.collector(0);
    let control = SearchControl::unbounded().with_cancel(token.clone());
    let err = mapper
        .map_traced(&dfg, &cgra, None, Some(&control), &mut col)
        .expect_err("fired token must abort the II search");
    assert!(err.cancelled, "{err}");
    tracer.submit(vec![col]);
    let events = sink.take();
    assert!(
        events.iter().any(|e| e.phase.ends_with(".abort")),
        "no abort event: {:?}",
        events.iter().map(|e| e.phase).collect::<Vec<_>>()
    );
}

/// Satellite: graceful drain finishes in-flight work, then `run` returns
/// and the port stops accepting.
#[test]
fn drain_finishes_inflight_work_then_exits() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let inflight = {
        let addr = daemon.addr;
        std::thread::spawn(move || http(addr, "POST", "/compile", &compile_body("fir", "")))
    };
    wait_for(daemon.addr, "compile received", |m| {
        metric(m, "requests", "received") >= 1
    });
    let (status, _, body) = http(daemon.addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("draining"), "{body}");
    // The in-flight compile still completes with a real response.
    let (status, _, body) = inflight.join().expect("in-flight client");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"schema\":\"panorama-compile-v1\""));
    let addr = daemon.addr;
    daemon
        .thread
        .join()
        .expect("server thread")
        .expect("clean exit");
    // Drained: the listener is gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

/// Satellite: `/metrics` snapshots taken throughout a serving session pass
/// the SERVE001–003 lints, individually and as a monotone sequence.
#[test]
fn metrics_snapshots_pass_serve_lints() {
    let daemon = start(ServeConfig {
        workers: 2,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let mut snapshots = Vec::new();
    let mut snap = |addr| {
        let (status, _, body) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        snapshots.push(body.trim().to_string());
    };
    snap(daemon.addr);
    for kernel in ["fir", "cordic"] {
        let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body(kernel, ""));
        assert_eq!(status, 200);
        snap(daemon.addr);
    }
    // A replay (cache hit) and a lint round-trip.
    let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body("fir", ""));
    assert_eq!(status, 200);
    let (status, _, lint_response) = http(
        daemon.addr,
        "POST",
        "/lint",
        "{\"kernel\":\"fir\",\"arch\":\"8x8\",\"scale\":\"tiny\"}",
    );
    assert_eq!(status, 200, "{lint_response}");
    json::parse(&lint_response).expect("lint response parses");
    snap(daemon.addr);
    daemon.drain_and_join();

    let mut diags = Diagnostics::new();
    lint_serve_json(&format!("[{}]", snapshots.join(",")), &mut diags);
    assert_eq!(
        diags.iter().count(),
        0,
        "lint findings: {:?}",
        diags
            .iter()
            .map(|d| (d.code, d.message.clone()))
            .collect::<Vec<_>>()
    );
}

/// Satellite: the MRRG cache is shared across requests for the same
/// architecture — repeat compiles hit it instead of rebuilding graphs.
#[test]
fn mrrg_cache_is_reused_across_requests() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body("fir", ""));
    assert_eq!(status, 200);
    let first = metric(&metrics(daemon.addr), "mrrg_cache", "misses");
    assert!(first > 0, "first compile must build MRRGs");
    // Different kernel, same architecture: IIs overlap, so at least one
    // lookup must now hit the shared cache.
    let (status, _, _) = http(daemon.addr, "POST", "/compile", &compile_body("cordic", ""));
    assert_eq!(status, 200);
    let m = metrics(daemon.addr);
    assert!(
        metric(&m, "mrrg_cache", "hits") > 0,
        "second compile on the same arch should hit the MRRG cache"
    );
    daemon.drain_and_join();
}

/// Malformed requests and unknown routes get structured errors, and the
/// loopback guard is wired (every local connection *is* loopback, so the
/// allowed path is what's testable here; the 403 arm is unit-logic).
#[test]
fn bad_requests_get_structured_errors() {
    let daemon = start(ServeConfig::default());
    let (status, _, body) = http(daemon.addr, "POST", "/compile", "{\"kernel\":\"nope\"}");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown kernel"), "{body}");
    let (status, _, _) = http(daemon.addr, "POST", "/compile", "not json");
    assert_eq!(status, 400);
    let (status, _, _) = http(daemon.addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = http(daemon.addr, "GET", "/compile", "");
    assert_eq!(status, 405);
    // An infeasible compile is a 422, not a hang or a 500: fir at scaled
    // size cannot fit the 6x1 linear array.
    let (status, _, body) = http(
        daemon.addr,
        "POST",
        "/compile",
        "{\"kernel\":\"fir\",\"arch\":\"6x1\",\"scale\":\"scaled\",\"max_ii\":4}",
    );
    assert_eq!(status, 422, "{body}");
    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "requests", "failed"), 1);
    daemon.drain_and_join();
}

/// A per-test disk-cache directory, scrubbed before use.
fn cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("panorama-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tentpole: a daemon restart over the same `--cache-dir` serves warm
/// responses byte-identically from disk — the in-memory tiers start
/// empty, so the replay can only have come from the persistent cache.
#[test]
fn disk_cache_survives_restart_byte_identically() {
    let dir = cache_dir("restart");
    let config = || ServeConfig {
        workers: 2,
        queue_depth: 8,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let kernels = ["fir", "cordic"];
    let daemon = start(config());
    let cold: Vec<String> = kernels
        .iter()
        .map(|k| {
            let (status, _, body) = http(daemon.addr, "POST", "/compile", &compile_body(k, ""));
            assert_eq!(status, 200, "{body}");
            body
        })
        .collect();
    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "disk_cache", "entries"), 2);
    assert_eq!(metric(&m, "disk_cache", "hits"), 0);
    daemon.drain_and_join();

    // A fresh daemon: process state is gone, the disk corpus is not.
    let daemon = start(config());
    for (k, want) in kernels.iter().zip(&cold) {
        let (status, _, body) = http(daemon.addr, "POST", "/compile", &compile_body(k, ""));
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, want, "{k}: restart replay must be byte-identical");
    }
    let m = metrics(daemon.addr);
    assert_eq!(
        metric(&m, "disk_cache", "hits"),
        2,
        "warm replays must be answered from disk, not recompiled"
    );
    assert_eq!(metric(&m, "result_cache", "hits"), 2);
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a truncated on-disk entry is dropped and recompiled — the
/// daemon never serves bytes that fail the integrity check, and the
/// recompile reproduces the original response exactly.
#[test]
fn truncated_disk_entry_is_recompiled_not_served() {
    let dir = cache_dir("truncate");
    let config = || ServeConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let daemon = start(config());
    let (status, _, want) = http(daemon.addr, "POST", "/compile", &compile_body("fir", ""));
    assert_eq!(status, 200);
    daemon.drain_and_join();

    // Truncate every committed entry mid-body.
    let mut truncated = 0;
    for dirent in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = dirent.expect("dirent").path();
        if path.extension().and_then(|e| e.to_str()) == Some("entry") {
            let raw = std::fs::read_to_string(&path).expect("read entry");
            std::fs::write(&path, &raw[..raw.len() / 2]).expect("truncate");
            truncated += 1;
        }
    }
    assert!(truncated > 0, "first daemon must have persisted entries");

    let daemon = start(config());
    let (status, _, body) = http(daemon.addr, "POST", "/compile", &compile_body("fir", ""));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, want, "recompile must reproduce the original bytes");
    let m = metrics(daemon.addr);
    assert_eq!(
        metric(&m, "disk_cache", "hits"),
        0,
        "a truncated entry must never be served"
    );
    assert!(
        metric(&m, "disk_cache", "corrupt") >= 1,
        "the dropped entry must be counted"
    );
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole: `/compile-batch` responses embed, per entry, the exact bytes
/// `/compile` returns for the same body — at every worker count — and a
/// bad entry fails alone (400 in its slot) while the rest of the batch
/// completes.
#[test]
fn compile_batch_matches_individual_compiles() {
    let kernels = ["fir", "cordic", "edn", "conv2d"];
    // Per-entry reference bytes from a separate daemon's /compile, so the
    // batch path under test cannot be answered from a shared cache.
    let reference = start(ServeConfig::default());
    let singles: Vec<String> = kernels
        .iter()
        .map(|k| {
            let (status, _, body) = http(reference.addr, "POST", "/compile", &compile_body(k, ""));
            assert_eq!(status, 200, "{body}");
            body.trim_end().to_string()
        })
        .collect();
    reference.drain_and_join();

    for workers in [1usize, 2, 4] {
        let daemon = start(ServeConfig {
            workers,
            queue_depth: 8,
            ..ServeConfig::default()
        });
        // Entry 2 is malformed: it must fail alone, in place.
        let mut entries: Vec<String> = kernels.iter().map(|k| compile_body(k, "")).collect();
        entries.insert(2, compile_body("nope", ""));
        let frame = format!("{{\"entries\":[{}]}}", entries.join(","));
        let (status, _, body) = http(daemon.addr, "POST", "/compile-batch", &frame);
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("batch envelope parses");
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("panorama-serve-batch-v1")
        );
        assert_eq!(doc.get("count").unwrap().as_f64(), Some(5.0));
        // Byte-level check: each good entry embeds the single-compile
        // response verbatim at its index.
        for (slot, want) in [
            (0, &singles[0]),
            (1, &singles[1]),
            (3, &singles[2]),
            (4, &singles[3]),
        ] {
            let exact = format!("{{\"index\":{slot},\"status\":200,\"response\":{want}}}");
            assert!(
                body.contains(&exact),
                "workers {workers}: entry {slot} not byte-identical to /compile\n{body}"
            );
        }
        assert!(
            body.contains("{\"index\":2,\"status\":400,"),
            "bad entry must 400 in place: {body}"
        );
        assert!(body.contains("unknown kernel"), "{body}");
        // The four valid entries are the only metric-visible requests.
        let m = metrics(daemon.addr);
        assert_eq!(metric(&m, "requests", "received"), 4);
        assert_eq!(metric(&m, "requests", "completed"), 4);
        daemon.drain_and_join();
    }
}

/// Tentpole: token-bucket admission control — with `rps 0, burst 2` a
/// tenant gets exactly two admissions, then deterministic `429` with
/// `Retry-After`; other tenants have their own buckets; batches charge
/// one token per entry all-or-nothing; the quota state shows in
/// `/metrics` and passes the serve lints.
#[test]
fn quota_admits_burst_then_rejects_with_429() {
    let daemon = start(ServeConfig {
        workers: 1,
        queue_depth: 8,
        quota_rps: 0,
        quota_burst: 2,
        ..ServeConfig::default()
    });
    let tenant = |name: &str| format!("X-Panorama-Tenant: {name}");
    let body = compile_body("fir", "");
    for _ in 0..2 {
        let (status, _, payload) =
            http_with_headers(daemon.addr, "POST", "/compile", &[&tenant("alice")], &body);
        assert_eq!(status, 200, "{payload}");
    }
    let (status, head, payload) =
        http_with_headers(daemon.addr, "POST", "/compile", &[&tenant("alice")], &body);
    assert_eq!(status, 429, "{payload}");
    assert!(
        head.contains("Retry-After: 60"),
        "rps 0 never refills, so Retry-After is the long delay:\n{head}"
    );
    assert!(
        payload.contains("\"error\":\"quota_exceeded\""),
        "{payload}"
    );
    // A different tenant has an untouched bucket.
    let (status, _, payload) =
        http_with_headers(daemon.addr, "POST", "/compile", &[&tenant("bob")], &body);
    assert_eq!(status, 200, "{payload}");
    // Batches charge per entry, all-or-nothing: bob holds one token, so a
    // two-entry batch is rejected whole and spends nothing...
    let batch = format!("{{\"entries\":[{body},{body}]}}");
    let (status, _, payload) = http_with_headers(
        daemon.addr,
        "POST",
        "/compile-batch",
        &[&tenant("bob")],
        &batch,
    );
    assert_eq!(status, 429, "{payload}");
    // ...while a one-entry batch still fits.
    let batch = format!("{{\"entries\":[{body}]}}");
    let (status, _, payload) = http_with_headers(
        daemon.addr,
        "POST",
        "/compile-batch",
        &[&tenant("bob")],
        &batch,
    );
    assert_eq!(status, 200, "{payload}");

    let m = metrics(daemon.addr);
    assert_eq!(metric(&m, "requests", "quota_rejected"), 3);
    assert_eq!(metric(&m, "quota", "rejected"), 3);
    let tenants = m
        .get("quota")
        .and_then(|q| q.get("tenants"))
        .and_then(Json::as_arr)
        .expect("tenants array");
    let names: Vec<&str> = tenants
        .iter()
        .map(|t| t.get("tenant").and_then(Json::as_str).expect("tenant name"))
        .collect();
    assert_eq!(names, ["alice", "bob"], "tenants sorted by name");
    // The snapshot passes the quota/disk serve lints.
    let (_, _, snapshot) = http(daemon.addr, "GET", "/metrics", "");
    let mut diags = Diagnostics::new();
    lint_serve_json(&format!("[{}]", snapshot.trim()), &mut diags);
    assert_eq!(
        diags.iter().count(),
        0,
        "lint findings: {:?}",
        diags
            .iter()
            .map(|d| (d.code, d.message.clone()))
            .collect::<Vec<_>>()
    );
    daemon.drain_and_join();
}

/// Satellite: a slow-loris peer that stalls mid-body trips the per-socket
/// read timeout and gets a structured `400` instead of pinning a
/// connection thread — and the daemon keeps serving normal clients.
#[test]
fn stalled_request_times_out_with_400() {
    let daemon = start(ServeConfig {
        workers: 1,
        io_timeout: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Claim 200 body bytes, send 8, then stall.
    write!(
        stream,
        "POST /compile HTTP/1.1\r\nHost: t\r\nContent-Length: 200\r\n\r\n{{\"kern"
    )
    .expect("send partial");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "stalled body must yield a 400:\n{response}"
    );
    assert!(response.contains("bad_request"), "{response}");
    // The daemon is still healthy for well-behaved clients.
    let (status, _, body) = http(daemon.addr, "POST", "/compile", &compile_body("fir", ""));
    assert_eq!(status, 200, "{body}");
    daemon.drain_and_join();
}
