//! Dynamic end-to-end validation: every guided mapping is *executed* for
//! several pipelined iterations and value-checked against the reference
//! DFG interpreter.
//!
//! Every kernel of the paper's suite runs at `KernelScale::Tiny` under
//! both lower-level mappers. A kernel may only be excused from a check
//! with an explicit reason string (collected and asserted against an
//! allow-list) — silent skips hide exactly the regressions this file
//! exists to catch.

use panorama::{Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_exec::{execute, ExecError, ExecOptions};
use panorama_mapper::{ExactConfig, ExactMapper, SatMapper, SprMapper, UltraFastMapper};
use panorama_sim::{simulate, SimError};

/// Per-kernel outcome: simulated clean, or skipped for a stated reason.
enum Outcome {
    Simulated { checked: usize },
    Skipped { reason: String },
}

fn run_all_on<F>(config: CgraConfig, mut one: F) -> Vec<(KernelId, Outcome)>
where
    F: FnMut(KernelId, &panorama_dfg::Dfg, &Cgra) -> Outcome,
{
    let cgra = Cgra::new(config).unwrap();
    KernelId::ALL
        .iter()
        .map(|&id| {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            (id, one(id, &dfg, &cgra))
        })
        .collect()
}

fn run_all<F>(one: F) -> Vec<(KernelId, Outcome)>
where
    F: FnMut(KernelId, &panorama_dfg::Dfg, &Cgra) -> Outcome,
{
    run_all_on(CgraConfig::scaled_8x8(), one)
}

#[test]
fn all_tiny_kernels_simulate_clean_under_spr() {
    let compiler = Panorama::new(PanoramaConfig::default());
    let outcomes = run_all(|id, dfg, cgra| {
        let report = compiler
            .compile(dfg, cgra, &SprMapper::default())
            .unwrap_or_else(|e| panic!("{id}: SPR must map every tiny kernel: {e}"));
        match simulate(dfg, cgra, report.mapping(), 6) {
            Ok(sim) => Outcome::Simulated {
                checked: sim.checked_deliveries,
            },
            Err(e) => panic!("{id}: simulation failed: {e}"),
        }
    });
    assert_eq!(outcomes.len(), 12, "the paper's suite has 12 kernels");
    for (id, outcome) in outcomes {
        match outcome {
            Outcome::Simulated { checked } => {
                let deps = kernels::generate(id, KernelScale::Tiny).num_deps();
                assert!(
                    checked >= deps,
                    "{id}: only {checked} deliveries checked for {deps} deps"
                );
            }
            Outcome::Skipped { reason } => {
                panic!("{id}: SPR path admits no skips, got `{reason}`")
            }
        }
    }
}

#[test]
fn all_tiny_kernels_verify_under_ultrafast_and_skip_simulation_explicitly() {
    // Ultra-Fast is the paper's abstract mapper: it models the
    // interconnect as a wiring budget and emits no concrete routes, so
    // cycle-accurate simulation is *definitionally* inapplicable. The test
    // still demands (a) every kernel maps and statically verifies, and
    // (b) the simulator refuses with the one sanctioned reason rather
    // than silently passing.
    let compiler = Panorama::new(PanoramaConfig::default());
    let outcomes = run_all(|id, dfg, cgra| {
        let report = compiler
            .compile(dfg, cgra, &UltraFastMapper::default())
            .unwrap_or_else(|e| panic!("{id}: Ultra-Fast must map every tiny kernel: {e}"));
        report
            .mapping()
            .verify(dfg, cgra)
            .unwrap_or_else(|e| panic!("{id}: Ultra-Fast mapping fails verify: {e:?}"));
        match simulate(dfg, cgra, report.mapping(), 6) {
            Ok(_) => panic!("{id}: a routeless mapping must not simulate"),
            Err(SimError::NoRoutes) => Outcome::Skipped {
                reason: "ultrafast models the interconnect abstractly; no routes to execute"
                    .to_string(),
            },
            Err(e) => panic!("{id}: expected NoRoutes, got {e}"),
        }
    });
    assert_eq!(outcomes.len(), 12);
    let skips: Vec<&str> = outcomes
        .iter()
        .filter_map(|(_, o)| match o {
            Outcome::Skipped { reason } => Some(reason.as_str()),
            Outcome::Simulated { .. } => None,
        })
        .collect();
    assert_eq!(
        skips.len(),
        12,
        "every Ultra-Fast kernel records its skip reason explicitly"
    );
    assert!(
        skips.iter().all(|r| r.contains("no routes to execute")),
        "skip reasons must state the NoRoutes cause"
    );
}

// ---------------------------------------------------------------------
// Data-level execution: beyond token *delivery* (the simulator above),
// the configware of every backend is replayed on the data-carrying
// cycle-accurate machine and every produced value is compared against
// the DFG reference interpreter, under all five input-vector families.
// The same discipline applies: a backend may only be excused with an
// explicit, asserted reason.
// ---------------------------------------------------------------------

/// Runs the data-level differential oracle on one compiled mapping and
/// folds the result into an [`Outcome`]; divergences panic with the
/// kernel and the first mismatching token.
fn exec_outcome(
    id: KernelId,
    dfg: &panorama_dfg::Dfg,
    cgra: &Cgra,
    mapping: &panorama_mapper::Mapping,
    opts: &ExecOptions,
) -> Outcome {
    match execute(dfg, cgra, mapping, opts) {
        Ok(out) => {
            assert!(
                out.passed(),
                "{id}: value divergence: {:?}",
                out.first_divergence()
            );
            Outcome::Simulated {
                checked: out.checked_total(),
            }
        }
        Err(ExecError::NoRoutes) => Outcome::Skipped {
            reason: "abstract mapping carries no routes; nothing to execute".to_string(),
        },
        Err(e) => panic!("{id}: execution failed: {e}"),
    }
}

#[test]
fn all_tiny_kernels_execute_data_level_under_spr() {
    let compiler = Panorama::new(PanoramaConfig::default());
    let opts = ExecOptions::default();
    let outcomes = run_all(|id, dfg, cgra| {
        let report = compiler
            .compile(dfg, cgra, &SprMapper::default())
            .unwrap_or_else(|e| panic!("{id}: SPR must map every tiny kernel: {e}"));
        exec_outcome(id, dfg, cgra, report.mapping(), &opts)
    });
    assert_eq!(outcomes.len(), 12);
    for (id, outcome) in outcomes {
        match outcome {
            Outcome::Simulated { checked } => {
                let ops = kernels::generate(id, KernelScale::Tiny).num_ops();
                assert_eq!(
                    checked,
                    5 * ops * opts.iterations,
                    "{id}: every (vector, op, iteration) token must be checked"
                );
            }
            Outcome::Skipped { reason } => {
                panic!("{id}: SPR emits concrete routes, no skip allowed, got `{reason}`")
            }
        }
    }
}

#[test]
fn all_tiny_kernels_execute_data_level_under_sat() {
    // SAT maps on the 4x4 fabric (matching tests/sat_backend.rs); fewer
    // iterations keep the 12-kernel sweep fast without losing coverage.
    let compiler = Panorama::new(PanoramaConfig::default());
    let opts = ExecOptions {
        iterations: 4,
        ..ExecOptions::default()
    };
    let outcomes = run_all_on(CgraConfig::small_4x4(), |id, dfg, cgra| {
        let report = compiler
            .compile(dfg, cgra, &SatMapper::default())
            .unwrap_or_else(|e| panic!("{id}: SAT must map every tiny kernel: {e}"));
        let mapped = report.mapped_dfg(dfg);
        exec_outcome(id, mapped, cgra, report.mapping(), &opts)
    });
    assert_eq!(outcomes.len(), 12);
    for (id, outcome) in outcomes {
        match outcome {
            Outcome::Simulated { checked } => assert!(checked > 0, "{id}: nothing checked"),
            Outcome::Skipped { reason } => {
                panic!("{id}: SAT emits concrete routes, no skip allowed, got `{reason}`")
            }
        }
    }
}

#[test]
fn exact_backend_executes_small_kernels_and_skips_over_cap_explicitly() {
    // The exhaustive mapper proves optimality only below its op cap; the
    // kernels above it are excused with the cap spelled out, everything
    // below must execute value-equal.
    let compiler = Panorama::new(PanoramaConfig::default());
    let cap = ExactConfig::default().max_ops;
    let opts = ExecOptions {
        iterations: 4,
        ..ExecOptions::default()
    };
    let outcomes = run_all_on(CgraConfig::small_4x4(), |id, dfg, cgra| {
        if dfg.num_ops() > cap {
            return Outcome::Skipped {
                reason: format!(
                    "{} ops exceed the exhaustive mapper's {cap}-op cap",
                    dfg.num_ops()
                ),
            };
        }
        let report = compiler
            .compile(dfg, cgra, &ExactMapper::default())
            .unwrap_or_else(|e| panic!("{id}: exact must map kernels under its cap: {e}"));
        let mapped = report.mapped_dfg(dfg);
        exec_outcome(id, mapped, cgra, report.mapping(), &opts)
    });
    assert_eq!(outcomes.len(), 12);
    let executed = outcomes
        .iter()
        .filter(|(_, o)| matches!(o, Outcome::Simulated { .. }))
        .count();
    assert!(
        executed >= 3,
        "at least fir/cordic/matrixmultiply fit under the exact op cap, got {executed}"
    );
    for (id, outcome) in outcomes {
        if let Outcome::Skipped { reason } = outcome {
            assert!(
                reason.contains("op cap"),
                "{id}: exact skips must cite the op cap, got `{reason}`"
            );
        }
    }
}

#[test]
fn all_tiny_kernels_skip_data_level_execution_under_ultrafast_explicitly() {
    // Ultra-Fast's abstract mappings carry no routes, so the data-level
    // oracle is definitionally inapplicable — but only with the reason
    // recorded, mirroring the simulation-level test above.
    let compiler = Panorama::new(PanoramaConfig::default());
    let opts = ExecOptions::default();
    let outcomes = run_all(|id, dfg, cgra| {
        let report = compiler
            .compile(dfg, cgra, &UltraFastMapper::default())
            .unwrap_or_else(|e| panic!("{id}: Ultra-Fast must map every tiny kernel: {e}"));
        exec_outcome(id, dfg, cgra, report.mapping(), &opts)
    });
    assert_eq!(outcomes.len(), 12);
    for (id, outcome) in outcomes {
        match outcome {
            Outcome::Simulated { .. } => panic!("{id}: a routeless mapping must not execute"),
            Outcome::Skipped { reason } => assert!(
                reason.contains("no routes"),
                "{id}: skip reason must state the missing routes, got `{reason}`"
            ),
        }
    }
}

#[test]
fn scaled_kernel_simulates_many_iterations() {
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Scaled);
    let report = compiler
        .compile(&dfg, &cgra, &SprMapper::default())
        .unwrap();
    let sim = simulate(&dfg, &cgra, report.mapping(), 16).unwrap();
    assert_eq!(sim.iterations, 16);
    assert!(sim.link_utilization > 0.0);
}
