//! Dynamic end-to-end validation: every guided mapping is *executed* for
//! several pipelined iterations and value-checked against the reference
//! DFG interpreter.

use panorama::{Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_mapper::SprMapper;
use panorama_sim::simulate;

#[test]
fn guided_mappings_simulate_clean_for_all_kernels() {
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let report = compiler
            .compile(&dfg, &cgra, &SprMapper::default())
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let sim = simulate(&dfg, &cgra, report.mapping(), 6)
            .unwrap_or_else(|e| panic!("{id}: simulation failed: {e}"));
        assert!(sim.checked_deliveries >= dfg.num_deps(), "{id}");
    }
}

#[test]
fn scaled_kernel_simulates_many_iterations() {
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Scaled);
    let report = compiler
        .compile(&dfg, &cgra, &SprMapper::default())
        .unwrap();
    let sim = simulate(&dfg, &cgra, report.mapping(), 16).unwrap();
    assert_eq!(sim.iterations, 16);
    assert!(sim.link_utilization > 0.0);
}
