//! Dynamic end-to-end validation: every guided mapping is *executed* for
//! several pipelined iterations and value-checked against the reference
//! DFG interpreter.
//!
//! Every kernel of the paper's suite runs at `KernelScale::Tiny` under
//! both lower-level mappers. A kernel may only be excused from a check
//! with an explicit reason string (collected and asserted against an
//! allow-list) — silent skips hide exactly the regressions this file
//! exists to catch.

use panorama::{Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_mapper::{SprMapper, UltraFastMapper};
use panorama_sim::{simulate, SimError};

/// Per-kernel outcome: simulated clean, or skipped for a stated reason.
enum Outcome {
    Simulated { checked: usize },
    Skipped { reason: String },
}

fn run_all<F>(mut one: F) -> Vec<(KernelId, Outcome)>
where
    F: FnMut(KernelId, &panorama_dfg::Dfg, &Cgra) -> Outcome,
{
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    KernelId::ALL
        .iter()
        .map(|&id| {
            let dfg = kernels::generate(id, KernelScale::Tiny);
            (id, one(id, &dfg, &cgra))
        })
        .collect()
}

#[test]
fn all_tiny_kernels_simulate_clean_under_spr() {
    let compiler = Panorama::new(PanoramaConfig::default());
    let outcomes = run_all(|id, dfg, cgra| {
        let report = compiler
            .compile(dfg, cgra, &SprMapper::default())
            .unwrap_or_else(|e| panic!("{id}: SPR must map every tiny kernel: {e}"));
        match simulate(dfg, cgra, report.mapping(), 6) {
            Ok(sim) => Outcome::Simulated {
                checked: sim.checked_deliveries,
            },
            Err(e) => panic!("{id}: simulation failed: {e}"),
        }
    });
    assert_eq!(outcomes.len(), 12, "the paper's suite has 12 kernels");
    for (id, outcome) in outcomes {
        match outcome {
            Outcome::Simulated { checked } => {
                let deps = kernels::generate(id, KernelScale::Tiny).num_deps();
                assert!(
                    checked >= deps,
                    "{id}: only {checked} deliveries checked for {deps} deps"
                );
            }
            Outcome::Skipped { reason } => {
                panic!("{id}: SPR path admits no skips, got `{reason}`")
            }
        }
    }
}

#[test]
fn all_tiny_kernels_verify_under_ultrafast_and_skip_simulation_explicitly() {
    // Ultra-Fast is the paper's abstract mapper: it models the
    // interconnect as a wiring budget and emits no concrete routes, so
    // cycle-accurate simulation is *definitionally* inapplicable. The test
    // still demands (a) every kernel maps and statically verifies, and
    // (b) the simulator refuses with the one sanctioned reason rather
    // than silently passing.
    let compiler = Panorama::new(PanoramaConfig::default());
    let outcomes = run_all(|id, dfg, cgra| {
        let report = compiler
            .compile(dfg, cgra, &UltraFastMapper::default())
            .unwrap_or_else(|e| panic!("{id}: Ultra-Fast must map every tiny kernel: {e}"));
        report
            .mapping()
            .verify(dfg, cgra)
            .unwrap_or_else(|e| panic!("{id}: Ultra-Fast mapping fails verify: {e:?}"));
        match simulate(dfg, cgra, report.mapping(), 6) {
            Ok(_) => panic!("{id}: a routeless mapping must not simulate"),
            Err(SimError::NoRoutes) => Outcome::Skipped {
                reason: "ultrafast models the interconnect abstractly; no routes to execute"
                    .to_string(),
            },
            Err(e) => panic!("{id}: expected NoRoutes, got {e}"),
        }
    });
    assert_eq!(outcomes.len(), 12);
    let skips: Vec<&str> = outcomes
        .iter()
        .filter_map(|(_, o)| match o {
            Outcome::Skipped { reason } => Some(reason.as_str()),
            Outcome::Simulated { .. } => None,
        })
        .collect();
    assert_eq!(
        skips.len(),
        12,
        "every Ultra-Fast kernel records its skip reason explicitly"
    );
    assert!(
        skips.iter().all(|r| r.contains("no routes to execute")),
        "skip reasons must state the NoRoutes cause"
    );
}

#[test]
fn scaled_kernel_simulates_many_iterations() {
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Scaled);
    let report = compiler
        .compile(&dfg, &cgra, &SprMapper::default())
        .unwrap();
    let sim = simulate(&dfg, &cgra, report.mapping(), 16).unwrap();
    assert_eq!(sim.iterations, 16);
    assert!(sim.link_utilization > 0.0);
}
