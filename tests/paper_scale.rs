//! Paper-scale regression: the headline Figure 7 behaviour at the paper's
//! own sizes (16×16 CGRA with 4×4 clusters, ~300-node kernels).
//!
//! Marked `#[ignore]` because one run costs minutes on a single core; run
//! with `cargo test --release --test paper_scale -- --ignored`.

use panorama::{Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_mapper::{SprConfig, SprMapper};
use std::time::Duration;

#[test]
#[ignore = "paper-scale run: minutes of compute"]
fn cordic_at_paper_scale_reaches_mii_guided() {
    let cgra = Cgra::new(CgraConfig::paper_16x16()).unwrap();
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Paper);
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = SprMapper::new(SprConfig {
        time_budget: Some(Duration::from_secs(600)),
        ..SprConfig::default()
    });
    let pan = compiler.compile(&dfg, &cgra, &mapper).expect("guided maps");
    pan.mapping().verify(&dfg, &cgra).unwrap();
    assert_eq!(
        pan.mapping().qom(),
        1.0,
        "the paper's guided mapper reaches MII on cordic"
    );
    // and the baseline is slower and/or worse, as in Figure 7
    let base = compiler
        .compile_baseline(&dfg, &cgra, &mapper)
        .expect("baseline maps");
    assert!(
        base.mapping().ii() >= pan.mapping().ii(),
        "baseline II {} vs guided {}",
        base.mapping().ii(),
        pan.mapping().ii()
    );
}

#[test]
#[ignore = "paper-scale run: minutes of compute"]
fn double_unrolled_kernel_maps_on_16x16() {
    // KernelScale::Custom beyond paper size: the unroll knob at work
    let cgra = Cgra::new(CgraConfig::paper_16x16()).unwrap();
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Custom { permille: 1500 });
    assert!(dfg.num_ops() > kernels::generate(KernelId::Cordic, KernelScale::Paper).num_ops());
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = SprMapper::new(SprConfig {
        time_budget: Some(Duration::from_secs(600)),
        ..SprConfig::default()
    });
    let report = compiler.compile(&dfg, &cgra, &mapper).expect("guided maps");
    report.mapping().verify(&dfg, &cgra).unwrap();
}
