//! Cross-crate integration tests of the substrates: spectral clustering
//! over generated kernels, scattering ILPs over real CDGs, MRRG routing
//! consistency, and property-based invariants spanning crate boundaries.

use panorama_arch::{Cgra, CgraConfig};
use panorama_cluster::{explore_partitions, top_balanced, Cdg, SpectralConfig};
use panorama_dfg::{kernels, random_dfg, KernelId, KernelScale, RandomDfgConfig};
use panorama_mapper::{min_ii, LowerLevelMapper, SprMapper};
use panorama_place::{map_clusters, ScatterConfig};
use proptest::prelude::*;

#[test]
fn clustering_to_scattering_round_trip_on_all_kernels() {
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, KernelScale::Scaled);
        let parts = explore_partitions(&dfg, 2, 8, &SpectralConfig::default())
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let best = top_balanced(&parts, 1)[0].1;
        let cdg = Cdg::new(&dfg, best);
        let map = map_clusters(&cdg, 2, 2, &ScatterConfig::default())
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        // every CDG node landed somewhere
        for n in cdg.cluster_ids() {
            assert!(!map.cells_of(n).is_empty(), "{id}: {n} unmapped");
        }
        // histogram covers every cell (kernels are big enough)
        let hist = map.histogram();
        for row in &hist {
            for &cell in row {
                assert!(cell > 0, "{id}: empty cell in {hist:?}");
            }
        }
    }
}

#[test]
fn mii_is_a_true_lower_bound() {
    // whatever the mapper achieves can never beat MII
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    for id in [KernelId::Fir, KernelId::Cordic, KernelId::Edn] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let mii = min_ii(&dfg, &cgra).mii();
        let mapping = SprMapper::default().map(&dfg, &cgra, None).unwrap();
        assert!(mapping.ii() >= mii, "{id}: II {} < MII {mii}", mapping.ii());
    }
}

#[test]
fn routes_only_use_existing_mrrg_nodes() {
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let dfg = kernels::generate(KernelId::IdctCols, KernelScale::Tiny);
    let mapping = SprMapper::default().map(&dfg, &cgra, None).unwrap();
    let mrrg = cgra.mrrg(mapping.ii());
    for route in mapping.routes().expect("SPR produces routes") {
        for &node in &route.nodes {
            assert!(node.index() < mrrg.num_nodes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random layered DFGs always survive the divide phase.
    #[test]
    fn random_dfgs_cluster_and_scatter(seed in 0u64..500, width in 3usize..7, layers in 3usize..6) {
        let dfg = random_dfg(&RandomDfgConfig {
            seed,
            layers,
            width,
            extra_fanin: 2,
            back_edges: 1,
        });
        prop_assert!(dfg.validate().is_ok());
        let parts = explore_partitions(&dfg, 2, 6, &SpectralConfig::default()).unwrap();
        let best = top_balanced(&parts, 1)[0].1;
        let cdg = Cdg::new(&dfg, best);
        prop_assert_eq!(cdg.total_dfg_nodes(), dfg.num_ops());
        let map = map_clusters(&cdg, 2, 2, &ScatterConfig::default()).unwrap();
        for n in cdg.cluster_ids() {
            prop_assert!(!map.cells_of(n).is_empty());
        }
    }

    /// SPR mappings of random small DFGs verify end to end.
    #[test]
    fn random_dfgs_map_and_verify(seed in 0u64..200) {
        let dfg = random_dfg(&RandomDfgConfig {
            seed,
            layers: 4,
            width: 4,
            extra_fanin: 1,
            back_edges: 1,
        });
        let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
        let mapping = SprMapper::default().map(&dfg, &cgra, None).unwrap();
        prop_assert!(mapping.verify(&dfg, &cgra).is_ok());
    }
}
