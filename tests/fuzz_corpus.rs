//! Replays every committed fuzz reproducer in `fuzz/corpus/` through the
//! full oracle stack.
//!
//! Each corpus file is a minimized regression (a bug the fuzzer found and
//! the toolchain has since fixed) or a boundary case worth pinning. Replay
//! must produce zero `Fail` outcomes — `Skip`s are fine (an oracle can be
//! inapplicable, e.g. the exact mapper on a too-large case), but a `Fail`
//! means a fixed bug has come back.

use panorama_fuzz::{parse_corpus_case, replay_case, OracleConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fuzz")
        .join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("fuzz/corpus exists in the repository")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "dfg"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_seeded() {
    assert!(
        corpus_files().len() >= 3,
        "the committed corpus must hold at least three reproducers"
    );
}

#[test]
fn every_corpus_case_replays_clean() {
    let cfg = OracleConfig::default();
    let mut failures = Vec::new();
    for path in corpus_files() {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: unreadable corpus file: {e}"));
        let case =
            parse_corpus_case(&text).unwrap_or_else(|e| panic!("{name}: malformed corpus: {e}"));
        if let Err(msg) = replay_case(&case, &cfg) {
            failures.push(format!("{name}: {msg}"));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions resurfaced:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_directives_are_well_formed() {
    // Every committed case should be self-describing: an arch is required
    // by the parser, and a note explaining *why* the case is pinned keeps
    // the corpus reviewable.
    for path in corpus_files() {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&path).unwrap();
        let case = parse_corpus_case(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            case.note.is_some(),
            "{name}: corpus cases must carry a `#! note` explaining the pin"
        );
        assert!(!case.dfg.to_text().is_empty(), "{name}: empty DFG");
    }
}
