//! Table-driven cross-check of the two mapping oracles.
//!
//! `Mapping::verify` is the *static* oracle: it checks structure —
//! placement legality, dependence timing, route endpoints, latency, and
//! resource capacity. `panorama_sim::simulate` is the *dynamic* oracle: it
//! executes the pipelined loop and cross-checks arrival cycles, steady-
//! state resource occupancy, and actual values against the sequential
//! interpreter.
//!
//! Each test takes a known-good SPR\* mapping, applies one targeted
//! corruption, and asserts the oracles reject it. The table documents
//! which oracle catches which defect class:
//!
//! | mutation              | verify                  | simulate            |
//! |-----------------------|-------------------------|---------------------|
//! | swap two placements   | RouteEndpoint           | rejects (arrival)   |
//! | truncate a route      | RouteLatency/Endpoint   | rejects (arrival)   |
//! | drop a route entirely | RouteMissing            | rejects (no path)   |
//! | alias another route   | RouteEndpoint/Disconn.  | rejects (arrival)   |
//! | break dependence time | DependenceViolated      | rejects (arrival)   |
//! | collide two FU slots  | FuConflict              | rejects (collision) |
//!
//! Both oracles overlap on most structural defects (a broken route also
//! produces wrong dynamics), which is exactly what makes differential
//! fuzzing informative: a case where they *disagree* — like the
//! `route-dwell-link-collision` corpus entry, where a route dwelling on a
//! link across II windows passed the old per-producer verify but failed
//! simulation — is a bug in one of the oracles or in the mapper.

use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{DfgBuilder, OpKind};
use panorama_mapper::{LowerLevelMapper, Mapping, SprMapper, VerifyError};
use panorama_sim::simulate;

/// A small diamond with a recurrence: enough edges for every mutation.
fn fixture() -> (panorama_dfg::Dfg, Cgra, Mapping) {
    let mut b = DfgBuilder::new("diamond");
    let a = b.op(OpKind::Load, "a");
    let l = b.op(OpKind::Add, "l");
    let r = b.op(OpKind::Shift, "r");
    let j = b.op(OpKind::Add, "j");
    let s = b.op(OpKind::Store, "s");
    b.data(a, l);
    b.data(a, r);
    b.data(l, j);
    b.data(r, j);
    b.data(j, s);
    b.back(j, j, 1);
    let dfg = b.build().unwrap();
    let cgra = Cgra::new(CgraConfig::small_4x4()).unwrap();
    let mapping = SprMapper::default()
        .map(&dfg, &cgra, None)
        .expect("fixture maps");
    mapping.verify(&dfg, &cgra).expect("fixture verifies");
    simulate(&dfg, &cgra, &mapping, 4).expect("fixture simulates");
    (dfg, cgra, mapping)
}

/// Rebuilds the fixture mapping with one field replaced.
fn rebuild(
    m: &Mapping,
    dfg: &panorama_dfg::Dfg,
    time_of: Option<Vec<usize>>,
    pe_of: Option<Vec<panorama_arch::PeId>>,
    routes: Option<Vec<panorama_mapper::Route>>,
) -> Mapping {
    let _ = dfg;
    Mapping::from_parts(
        "mutated",
        m.ii(),
        m.mii(),
        time_of.unwrap_or_else(|| m.assignments().map(|(t, _)| t).collect()),
        pe_of.unwrap_or_else(|| m.assignments().map(|(_, pe)| pe).collect()),
        Some(routes.unwrap_or_else(|| m.routes().unwrap().to_vec())),
    )
}

#[test]
fn swapping_two_placements_is_rejected() {
    let (dfg, cgra, m) = fixture();
    let mut pe_of: Vec<_> = m.assignments().map(|(_, pe)| pe).collect();
    // find two ops on different PEs so the swap matters
    let (i, j) = (0..pe_of.len())
        .flat_map(|i| (i + 1..pe_of.len()).map(move |j| (i, j)))
        .find(|&(i, j)| pe_of[i] != pe_of[j])
        .expect("fixture spreads ops");
    pe_of.swap(i, j);
    let mutant = rebuild(&m, &dfg, None, Some(pe_of), None);
    let err = mutant.verify(&dfg, &cgra).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::RouteEndpoint { .. }
                | VerifyError::MemOpOnComputePe { .. }
                | VerifyError::MulOnPlainPe { .. }
                | VerifyError::FuConflict { .. }
        ),
        "swap must break endpoints or placement legality, got {err:?}"
    );
    assert!(
        simulate(&dfg, &cgra, &mutant, 4).is_err(),
        "simulation must reject swapped placements"
    );
}

#[test]
fn truncating_a_route_is_rejected() {
    let (dfg, cgra, m) = fixture();
    let mut routes = m.routes().unwrap().to_vec();
    let victim = routes
        .iter_mut()
        .find(|r| r.nodes.len() >= 2)
        .expect("some route has at least two nodes");
    victim.nodes.pop();
    let mutant = rebuild(&m, &dfg, None, None, Some(routes));
    let err = mutant.verify(&dfg, &cgra).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::RouteLatency { .. } | VerifyError::RouteEndpoint { .. }
        ),
        "truncation must break latency or the terminal endpoint, got {err:?}"
    );
    assert!(
        simulate(&dfg, &cgra, &mutant, 4).is_err(),
        "simulation must reject a truncated route"
    );
}

#[test]
fn dropping_a_route_is_rejected() {
    let (dfg, cgra, m) = fixture();
    let mut routes = m.routes().unwrap().to_vec();
    routes[0].nodes.clear();
    let mutant = rebuild(&m, &dfg, None, None, Some(routes));
    assert!(
        matches!(
            mutant.verify(&dfg, &cgra).unwrap_err(),
            VerifyError::RouteMissing { edge: 0 }
        ),
        "an empty route is a missing route"
    );
    assert!(simulate(&dfg, &cgra, &mutant, 4).is_err());
}

#[test]
fn aliasing_another_routes_path_is_rejected() {
    let (dfg, cgra, m) = fixture();
    let mut routes = m.routes().unwrap().to_vec();
    // point edge 1's signal down edge 0's wires: endpoints no longer match
    // edge 1's producer/consumer placement
    let donor = routes[0].nodes.clone();
    let distinct = routes
        .iter()
        .position(|r| r.edge_index != 0 && r.nodes != donor)
        .expect("fixture has distinct routes");
    routes[distinct].nodes = donor;
    let mutant = rebuild(&m, &dfg, None, None, Some(routes));
    let err = mutant.verify(&dfg, &cgra).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::RouteEndpoint { .. }
                | VerifyError::RouteLatency { .. }
                | VerifyError::RouteDisconnected { .. }
        ),
        "an aliased path must break endpoints, latency, or adjacency, got {err:?}"
    );
    assert!(simulate(&dfg, &cgra, &mutant, 4).is_err());
}

#[test]
fn breaking_dependence_timing_is_rejected() {
    let (dfg, cgra, m) = fixture();
    let mut time_of: Vec<usize> = m.assignments().map(|(t, _)| t).collect();
    // pull a consumer to cycle 0; some forward edge then has
    // t(dst) < t(src) + lat
    let e = dfg
        .deps()
        .find(|e| !e.weight.is_back() && time_of[e.dst.index()] > 0)
        .expect("fixture has a forward edge with a late consumer");
    time_of[e.dst.index()] = 0;
    let mutant = rebuild(&m, &dfg, Some(time_of), None, None);
    let err = mutant.verify(&dfg, &cgra).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::DependenceViolated { .. } | VerifyError::FuConflict { .. }
        ),
        "retiming must violate a dependence (or collide a slot), got {err:?}"
    );
    assert!(
        simulate(&dfg, &cgra, &mutant, 4).is_err(),
        "simulation must reject broken dependence timing"
    );
}

#[test]
fn colliding_two_fu_slots_is_rejected() {
    let (dfg, cgra, m) = fixture();
    let mut time_of: Vec<usize> = m.assignments().map(|(t, _)| t).collect();
    let mut pe_of: Vec<_> = m.assignments().map(|(_, pe)| pe).collect();
    // land op 1 on op 0's exact (PE, slot)
    pe_of[1] = pe_of[0];
    time_of[1] = time_of[0];
    let mutant = rebuild(&m, &dfg, Some(time_of), Some(pe_of), None);
    assert!(
        matches!(
            mutant.verify(&dfg, &cgra).unwrap_err(),
            VerifyError::FuConflict { .. } | VerifyError::MemOpOnComputePe { .. }
        ),
        "two ops on one FU slot must conflict"
    );
    assert!(simulate(&dfg, &cgra, &mutant, 4).is_err());
}
