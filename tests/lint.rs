//! End-to-end tests of the `panorama lint` subcommand and the pipeline's
//! static pre-flight rejection of provably infeasible runs.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_panorama"))
}

/// Variant names of all twelve built-in kernels — `load_dfg` accepts them
/// case-insensitively alongside the paper-table names (which contain spaces).
const KERNELS: [&str; 12] = [
    "Edn",
    "IdctCols",
    "IdctRows",
    "Conv2d",
    "MatchedFilter",
    "MatrixMultiply",
    "Cordic",
    "KMeansClustering",
    "Fir",
    "JpegFdct",
    "JpegIdctFst",
    "InvertMat",
];

#[test]
fn all_builtin_kernels_lint_clean_on_presets() {
    for kernel in KERNELS {
        for arch in ["4x4", "8x8"] {
            let out = bin()
                .args(["lint", "--dfg", kernel, "--arch", arch, "--scale", "tiny"])
                .output()
                .unwrap();
            let stdout = String::from_utf8(out.stdout).unwrap();
            assert!(
                out.status.success(),
                "lint of `{kernel}` on {arch} found errors:\n{stdout}"
            );
            assert!(
                stdout.contains("0 error(s)"),
                "lint of `{kernel}` on {arch} should report zero errors:\n{stdout}"
            );
        }
    }
}

/// Minimal JSON reader: consumes one JSON value and returns the rest of the
/// input, panicking on malformed text. Enough to prove `--json` emits a
/// syntactically valid array of objects without pulling in a JSON crate.
fn skip_ws(s: &str) -> &str {
    s.trim_start()
}

fn consume_value(s: &str) -> &str {
    let s = skip_ws(s);
    match s.as_bytes().first().copied() {
        Some(b'[') => consume_seq(&s[1..], b']'),
        Some(b'{') => consume_seq(&s[1..], b'}'),
        Some(b'"') => consume_string(&s[1..]),
        Some(_) => {
            // number / true / false / null
            let end = s
                .find(|c: char| ",]}".contains(c) || c.is_whitespace())
                .unwrap_or(s.len());
            let atom = &s[..end];
            assert!(
                atom == "true" || atom == "false" || atom == "null" || atom.parse::<f64>().is_ok(),
                "bad JSON atom: {atom}"
            );
            &s[end..]
        }
        None => panic!("unexpected end of JSON"),
    }
}

fn consume_string(mut s: &str) -> &str {
    loop {
        match s.as_bytes().first().copied() {
            Some(b'"') => return &s[1..],
            Some(b'\\') => s = &s[2..],
            Some(_) => s = &s[1..],
            None => panic!("unterminated JSON string"),
        }
    }
}

fn consume_seq(mut s: &str, close: u8) -> &str {
    loop {
        s = skip_ws(s);
        if s.as_bytes().first().copied() == Some(close) {
            return &s[1..];
        }
        if close == b'}' {
            s = skip_ws(consume_string(&skip_ws(s)[1..]));
            assert_eq!(s.as_bytes().first().copied(), Some(b':'), "missing `:`");
            s = &s[1..];
        }
        s = consume_value(s);
        s = skip_ws(s);
        if s.as_bytes().first().copied() == Some(b',') {
            s = &s[1..];
        }
    }
}

#[test]
fn lint_json_output_parses_as_array() {
    let out = bin()
        .args([
            "lint", "--dfg", "fir", "--arch", "8x8", "--scale", "tiny", "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let trimmed = stdout.trim();
    assert!(trimmed.starts_with('['), "not a JSON array:\n{stdout}");
    let rest = consume_value(trimmed);
    assert!(
        rest.trim().is_empty(),
        "trailing garbage after array: {rest}"
    );
    // the prechecker always reports the static II bound
    assert!(stdout.contains("\"code\": \"MAP002\""), "{stdout}");
    assert!(stdout.contains("\"severity\": \"info\""), "{stdout}");
}

fn write_mul_less_arch() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("panorama-lint-test-{}.arch", std::process::id()));
    std::fs::write(&path, "cgra 8 8\nclusters 2 2\nmul none\n").unwrap();
    path
}

#[test]
fn lint_rejects_kernel_with_unsupported_op_kind() {
    // `fir` at tiny scale contains multiplies; an adder-only fabric cannot
    // execute them at any II.
    let arch = write_mul_less_arch();
    let out = bin()
        .args(["lint", "--dfg", "fir", "--scale", "tiny", "--arch"])
        .arg(&arch)
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        !out.status.success(),
        "adder-only lint should fail:\n{stdout}"
    );
    assert!(stdout.contains("MAP001"), "{stdout}");
    assert!(stdout.contains("unmappable at any II"), "{stdout}");
    assert!(stderr.contains("error(s)"), "{stderr}");
    let _ = std::fs::remove_file(arch);
}

#[test]
fn compile_rejects_kernel_with_unsupported_op_kind() {
    let arch = write_mul_less_arch();
    let out = bin()
        .args(["compile", "--dfg", "fir", "--scale", "tiny", "--arch"])
        .arg(&arch)
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        !out.status.success(),
        "compile on adder-only fabric should fail"
    );
    assert!(stderr.contains("statically infeasible"), "{stderr}");
    assert!(stderr.contains("MAP001"), "{stderr}");
    let _ = std::fs::remove_file(arch);
}

/// Four chained adds with a distance-1 recurrence: RecMII = 4, so any II
/// cap below 4 is provably unsatisfiable before running the mapper.
const LOOP4: &[u8] = b"dfg loop4\n\
    op 0 add a\nop 1 add b\nop 2 add c\nop 3 add d\n\
    edge 0 1\nedge 1 2\nedge 2 3\nback 3 0 1\n";

fn run_with_loop4_stdin(args: &[&str]) -> std::process::Output {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(LOOP4).unwrap();
    child.wait_with_output().unwrap()
}

#[test]
fn lint_rejects_ii_cap_below_static_bound() {
    let out = run_with_loop4_stdin(&["lint", "--dfg", "-", "--arch", "4x4", "--max-ii", "2"]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        !out.status.success(),
        "II cap 2 < RecMII 4 should fail lint:\n{stdout}"
    );
    assert!(stdout.contains("MAP003"), "{stdout}");
    assert!(stdout.contains("static lower bound"), "{stdout}");
}

#[test]
fn compile_rejects_ii_cap_below_static_bound() {
    let out = run_with_loop4_stdin(&["compile", "--dfg", "-", "--arch", "4x4", "--max-ii", "2"]);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!out.status.success(), "compile with II cap 2 should fail");
    assert!(stderr.contains("statically infeasible"), "{stderr}");
    assert!(stderr.contains("MAP003"), "{stderr}");
}

#[test]
fn compile_honours_achievable_ii_cap() {
    // RecMII is 4 and the cap allows it, so the pipeline must still succeed.
    let out = run_with_loop4_stdin(&[
        "compile",
        "--dfg",
        "-",
        "--arch",
        "4x4",
        "--baseline",
        "--max-ii",
        "8",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("mapped with SPR*"), "{stdout}");
}

#[test]
fn unknown_flags_and_commands_are_named_in_errors() {
    let out = bin()
        .args(["lint", "--dfg", "fir", "--frobnicate"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown flag `--frobnicate` for `lint`"),
        "{stderr}"
    );
    assert!(stderr.contains("accepted:"), "{stderr}");

    let out = bin().args(["delint"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command `delint`"), "{stderr}");

    let out = bin().args(["lint"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--dfg"), "{stderr}");
}
