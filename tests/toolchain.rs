//! Toolchain-level integration: configware generation across kernels, the
//! text-format boundary under property-based fuzzing, and render/CLI
//! surfaces.

use panorama::{Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, random_dfg, Dfg, KernelId, KernelScale, RandomDfgConfig};
use panorama_mapper::{Configware, SprMapper};
use proptest::prelude::*;

#[test]
fn configware_generates_for_every_kernel() {
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let report = compiler
            .compile(&dfg, &cgra, &SprMapper::default())
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let cfg = Configware::generate(&dfg, &cgra, report.mapping());
        assert_eq!(cfg.ii(), report.mapping().ii(), "{id}");
        // at least one word per op, and a plausible footprint
        assert!(cfg.active_words() >= dfg.num_ops(), "{id}");
        assert!(cfg.size_bits() >= 13 * dfg.num_ops(), "{id}");
        // the dump names every executing op
        let text = cfg.to_text(&cgra);
        assert!(text.lines().count() > dfg.num_ops(), "{id}");
    }
}

#[test]
fn render_covers_every_kernel() {
    let cgra = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let compiler = Panorama::new(PanoramaConfig::default());
    for id in [KernelId::Fir, KernelId::Cordic] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let report = compiler
            .compile(&dfg, &cgra, &SprMapper::default())
            .unwrap();
        let pic = report.mapping().render(&dfg, &cgra);
        // every op index appears
        for op in dfg.op_ids() {
            assert!(
                pic.contains(&format!("#{}", op.index())),
                "{id}: op {op} missing from render"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Text serialisation round-trips arbitrary generated DFGs exactly.
    #[test]
    fn dfg_text_round_trip(seed in 0u64..1000, layers in 2usize..6, width in 1usize..8, back in 0usize..3) {
        let dfg = random_dfg(&RandomDfgConfig {
            seed,
            layers,
            width,
            extra_fanin: 2,
            back_edges: back,
        });
        let text = dfg.to_text();
        let parsed = Dfg::from_text(&text).expect("serialised DFGs parse");
        prop_assert_eq!(parsed.num_ops(), dfg.num_ops());
        prop_assert_eq!(parsed.num_deps(), dfg.num_deps());
        prop_assert_eq!(parsed.stats(), dfg.stats());
        // second round trip is byte-identical (canonical form)
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// The parser never panics on arbitrary junk.
    #[test]
    fn dfg_parser_total_on_junk(input in "[a-z0-9 #\\n]{0,200}") {
        let _ = Dfg::from_text(&input); // must not panic
    }

    /// The architecture parser never panics on arbitrary junk either.
    #[test]
    fn adl_parser_total_on_junk(input in "[a-z0-9 \\n]{0,160}") {
        let _ = CgraConfig::from_text(&input); // must not panic
    }
}
