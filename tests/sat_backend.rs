//! End-to-end tests of the SAT mapping backend: every suite kernel maps,
//! verifies and simulates; the achieved II matches the exhaustive
//! optimum where the exhaustive mapper can check it; and the portfolio
//! with all three backends stays bit-identical at any thread count.

use panorama::{BackendId, Panorama, PanoramaConfig};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale};
use panorama_mapper::{ExactMapper, SatMapper};

fn cgra() -> Cgra {
    Cgra::new(CgraConfig::small_4x4()).expect("preset is valid")
}

#[test]
fn every_suite_kernel_maps_with_sat_verifies_and_simulates() {
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    let mapper = SatMapper::default();
    for id in KernelId::ALL {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let report = compiler
            .compile(&dfg, &cgra, &mapper)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let mapped = report.mapped_dfg(&dfg);
        report
            .mapping()
            .verify(mapped, &cgra)
            .unwrap_or_else(|e| panic!("{id}: invalid mapping: {e}"));
        panorama::sim::simulate(mapped, &cgra, report.mapping(), 4)
            .unwrap_or_else(|e| panic!("{id}: simulation diverged: {e}"));
    }
}

#[test]
fn sat_ii_is_never_worse_than_the_exhaustive_optimum() {
    // Only the kernels small enough for the exhaustive mapper's default
    // op cap; it proves the optimal II, so SAT must land at or below it.
    let cgra = cgra();
    let compiler = Panorama::new(PanoramaConfig::default());
    for id in [KernelId::Fir, KernelId::Cordic, KernelId::MatrixMultiply] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let exact = compiler
            .compile(&dfg, &cgra, &ExactMapper::default())
            .unwrap_or_else(|e| panic!("{id} exact: {e}"));
        let sat = compiler
            .compile(&dfg, &cgra, &SatMapper::default())
            .unwrap_or_else(|e| panic!("{id} sat: {e}"));
        assert!(
            sat.mapping().ii() <= exact.mapping().ii(),
            "{id}: SAT II {} worse than exhaustive optimum {}",
            sat.mapping().ii(),
            exact.mapping().ii()
        );
    }
}

#[test]
fn portfolio_with_all_backends_is_bit_identical_across_thread_counts() {
    let cgra = cgra();
    let dfg = kernels::generate(KernelId::Cordic, KernelScale::Tiny);
    let mut renders = Vec::new();
    for threads in [1, 2, 4] {
        let compiler = Panorama::new(PanoramaConfig {
            threads,
            backends: BackendId::ALL.to_vec(),
            ..PanoramaConfig::default()
        });
        let report = compiler
            .compile_portfolio(&dfg, &cgra)
            .unwrap_or_else(|e| panic!("threads={threads}: {e}"));
        renders.push(report.to_json("cordic", "4x4"));
    }
    assert_eq!(renders[0], renders[1], "threads 1 vs 2 diverge");
    assert_eq!(renders[0], renders[2], "threads 1 vs 4 diverge");
}
