//! End-to-end tests of the `panorama` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_panorama"))
}

#[test]
fn kernels_lists_all_twelve() {
    let out = bin().args(["kernels", "--scale", "tiny"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["edn", "cordic", "fir", "invertmat", "matched filter"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
    assert_eq!(stdout.lines().count(), 13); // header + 12 kernels
}

#[test]
fn compile_builtin_kernel_end_to_end() {
    let out = bin()
        .args([
            "compile",
            "--dfg",
            "cordic",
            "--arch",
            "8x8",
            "--scale",
            "tiny",
            "--simulate",
            "3",
            "--configware",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("mapped with Pan-SPR*"));
    assert!(stdout.contains("simulation: 3 iterations"));
    assert!(stdout.contains("configware:"));
}

#[test]
fn compile_json_emits_canonical_document() {
    let out = bin()
        .args([
            "compile", "--dfg", "cordic", "--arch", "8x8", "--scale", "tiny", "--json",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    // Exactly one line of JSON on stdout (human banner goes to stderr).
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    let doc = panorama_trace::json::parse(&stdout).expect("valid JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("panorama-compile-v1")
    );
    assert_eq!(doc.get("kernel").unwrap().as_str(), Some("cordic"));
    assert_eq!(doc.get("arch").unwrap().as_str(), Some("8x8"));
    for field in ["mapper", "ii", "mii", "qom", "placement", "stats"] {
        assert!(doc.get(field).is_some(), "missing `{field}`: {stdout}");
    }
    // Deterministic: a second run is byte-identical.
    let again = bin()
        .args([
            "compile", "--dfg", "cordic", "--arch", "8x8", "--scale", "tiny", "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(stdout, String::from_utf8(again.stdout).unwrap());
}

#[test]
fn lint_validates_serve_metrics_files() {
    let dir = std::env::temp_dir().join("panorama-serve-lint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    std::fs::write(
        &good,
        "{\"schema\":\"panorama-serve-metrics-v1\",\
         \"queue\":{\"depth\":0,\"capacity\":4,\"in_flight\":0},\
         \"requests\":{\"received\":1,\"completed\":1,\"shed\":0,\"cancelled\":0,\
         \"failed\":0,\"quota_rejected\":0},\
         \"result_cache\":{\"hits\":1,\"misses\":0,\"entries\":0,\"capacity\":256,\"evictions\":0},\
         \"mrrg_cache\":{\"hits\":0,\"misses\":0,\"entries\":0,\"capacity\":32,\"evictions\":0},\
         \"warm_cache\":{\"hits\":0,\"misses\":0,\"entries\":0,\"capacity\":0,\"evictions\":0},\
         \"disk_cache\":{\"hits\":0,\"misses\":0,\"entries\":0,\"capacity\":0,\
         \"evictions\":0,\"bytes\":0,\"corrupt\":0},\
         \"quota\":{\"enabled\":false,\"rps\":0,\"burst\":0,\"rejected\":0,\"tenants\":[]},\
         \"phases\":[]}",
    )
    .unwrap();
    let out = bin()
        .args(["lint", "--serve-json", good.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    // Broken conservation: received 2 but only 1 accounted.
    let bad = dir.join("bad.json");
    std::fs::write(
        &bad,
        std::fs::read_to_string(&good)
            .unwrap()
            .replace("\"received\":1", "\"received\":2"),
    )
    .unwrap();
    let out = bin()
        .args(["lint", "--serve-json", bad.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SERVE002"), "{stdout}");
}

#[test]
fn analyze_subcommand_reports_and_exports_lintable_json() {
    let path =
        std::env::temp_dir().join(format!("panorama-analyze-cli-{}.json", std::process::id()));
    let path = path.to_str().unwrap().to_string();
    let out = bin()
        .args(["analyze", "invertmat", "--scale", "tiny", "--out", &path])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains("exact RecMII"), "{stdout}");
    assert!(stdout.contains("witness cycle"), "{stdout}");

    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"schema\": \"panorama-analyze-v1\""));
    // The exported report is schema-valid under the auto-detecting linter.
    let lint = bin().args(["lint", "--report", &path]).output().unwrap();
    assert!(
        lint.status.success(),
        "{}",
        String::from_utf8(lint.stdout).unwrap()
    );
    // Deterministic: a second run writes the identical document.
    let again_path = format!("{path}.again");
    let again = bin()
        .args([
            "analyze",
            "invertmat",
            "--scale",
            "tiny",
            "--out",
            &again_path,
        ])
        .output()
        .unwrap();
    assert!(again.status.success());
    assert_eq!(json, std::fs::read_to_string(&again_path).unwrap());
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&again_path).unwrap();
}

#[test]
fn compile_analyze_flag_optimizes_before_mapping() {
    let out = bin()
        .args([
            "compile",
            "--dfg",
            "invertmat",
            "--scale",
            "tiny",
            "--arch",
            "8x8",
            "--analyze",
            "--simulate",
            "3",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "{stdout}\n{stderr}");
    // invertmat's tiny graph folds: the optimizer must shrink it and the
    // simulation must still pass against the optimized graph.
    assert!(stderr.contains("analyze: 34 ops -> 26 ops"), "{stderr}");
    assert!(stdout.contains("simulation: 3 iterations"), "{stdout}");
}

#[test]
fn lint_report_auto_detects_schema_and_aliases_warn() {
    let dir = std::env::temp_dir().join("panorama-lint-report-test");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.json");
    std::fs::write(
        &metrics,
        "{\"schema\":\"panorama-serve-metrics-v1\",\
         \"queue\":{\"depth\":0,\"capacity\":4,\"in_flight\":0},\
         \"requests\":{\"received\":1,\"completed\":1,\"shed\":0,\"cancelled\":0,\
         \"failed\":0,\"quota_rejected\":0},\
         \"result_cache\":{\"hits\":1,\"misses\":0,\"entries\":0,\"capacity\":256,\"evictions\":0},\
         \"mrrg_cache\":{\"hits\":0,\"misses\":0,\"entries\":0,\"capacity\":32,\"evictions\":0},\
         \"warm_cache\":{\"hits\":0,\"misses\":0,\"entries\":0,\"capacity\":0,\"evictions\":0},\
         \"disk_cache\":{\"hits\":0,\"misses\":0,\"entries\":0,\"capacity\":0,\
         \"evictions\":0,\"bytes\":0,\"corrupt\":0},\
         \"quota\":{\"enabled\":false,\"rps\":0,\"burst\":0,\"rejected\":0,\"tenants\":[]},\
         \"phases\":[]}",
    )
    .unwrap();
    // --report dispatches on the schema field; no deprecation warning.
    let out = bin()
        .args(["lint", "--report", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("deprecated"), "{stderr}");
    // The legacy flag still works but warns on stderr.
    let out = bin()
        .args(["lint", "--serve-json", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--serve-json is deprecated"), "{stderr}");
    // An unknown schema is an input error, not a silent fallthrough.
    let odd = dir.join("odd.json");
    std::fs::write(&odd, "{\"schema\":\"panorama-mystery-v9\"}").unwrap();
    let out = bin()
        .args(["lint", "--report", odd.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown schema"), "{stderr}");
}

#[test]
fn compile_reads_dfg_from_stdin() {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = bin()
        .args(["compile", "--dfg", "-", "--arch", "4x4", "--baseline"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"dfg pipe\nop 0 ld a\nop 1 add b\nop 2 st c\nedge 0 1\nedge 1 2\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("mapped with SPR*"));
}

#[test]
fn trace_subcommand_profiles_and_exports_lintable_json() {
    let path = std::env::temp_dir().join(format!("panorama-trace-cli-{}.json", std::process::id()));
    let path = path.to_str().unwrap().to_string();
    let out = bin()
        .args([
            "trace",
            "fir",
            "--arch",
            "4x4",
            "--scale",
            "tiny",
            "--mapper",
            "ultrafast",
            "--out",
            &path,
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains("trace profile: fir"), "{stdout}");
    assert!(stdout.contains("partition"), "{stdout}");
    assert!(stdout.contains("wall-clock"), "{stdout}");

    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"schema\": \"panorama-trace-v1\""));
    let lint = bin()
        .args(["lint", "--trace-json", &path])
        .output()
        .unwrap();
    assert!(
        lint.status.success(),
        "{}",
        String::from_utf8(lint.stdout).unwrap()
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compile_trace_flag_writes_trace_json() {
    let path = std::env::temp_dir().join(format!(
        "panorama-compile-trace-cli-{}.json",
        std::process::id()
    ));
    let path = path.to_str().unwrap().to_string();
    let out = bin()
        .args([
            "compile",
            "--dfg",
            "cordic",
            "--arch",
            "4x4",
            "--scale",
            "tiny",
            "--mapper",
            "ultrafast",
            "--trace",
            &path,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"schema\": \"panorama-trace-v1\""));
    assert!(json.contains("\"kernel\": \"cordic\""));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn info_describes_presets() {
    let out = bin().args(["info", "--arch", "16x16"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success());
    assert!(stdout.contains("cgra 16 16"));
    assert!(stdout.contains("PEs 256"));
}

#[test]
fn bad_usage_fails_with_message() {
    let out = bin().args(["compile"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--dfg"));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["compile", "--dfg", "cordic", "--mapper", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown mapper"));
}

#[test]
fn exhaustive_mapper_selectable() {
    let out = bin()
        .args([
            "compile",
            "--dfg",
            "-",
            "--arch",
            "4x4",
            "--baseline",
            "--mapper",
            "exhaustive",
        ])
        .env("RUST_BACKTRACE", "0")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            use std::io::Write as _;
            child
                .stdin
                .as_mut()
                .unwrap()
                .write_all(b"dfg small\nop 0 add a\nop 1 add b\nedge 0 1\n")?;
            child.wait_with_output()
        })
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("exhaustive"));
}
