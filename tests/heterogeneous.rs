//! Heterogeneous-CGRA integration tests (REVAMP-style multiplier
//! stripping): mapping respects capabilities end to end, the MII model
//! accounts for the scarcer multipliers, and verification rejects
//! violations.

use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, KernelId, KernelScale, OpKind};
use panorama_mapper::{min_ii, LowerLevelMapper, SprMapper, UltraFastMapper};

fn hetero_8x8() -> Cgra {
    Cgra::new(CgraConfig {
        mul_every_n_columns: 2, // multipliers in every other column
        ..CgraConfig::scaled_8x8()
    })
    .expect("valid heterogeneous config")
}

#[test]
fn multiplier_stripping_halves_mul_pes() {
    let homo = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let hetero = hetero_8x8();
    assert_eq!(homo.num_mul_pes(), 64);
    assert_eq!(hetero.num_mul_pes(), 32);
    assert!(hetero.has_multiplier(hetero.pe_at(0, 0)));
    assert!(!hetero.has_multiplier(hetero.pe_at(0, 1)));
}

#[test]
fn mul_bound_raises_res_mii() {
    // 40 multiplies on 8 mul-PEs → ResMII ≥ 5
    let cgra = Cgra::new(CgraConfig {
        mul_every_n_columns: 4,
        mem_left_column_only: false,
        ..CgraConfig::small_4x4()
    })
    .unwrap();
    assert_eq!(cgra.num_mul_pes(), 4);
    let mut b = panorama_dfg::DfgBuilder::new("mulheavy");
    let x = b.op(OpKind::Load, "x");
    for i in 0..12 {
        let m = b.op(OpKind::Mul, format!("m{i}"));
        b.data(x, m);
    }
    let dfg = b.build().unwrap();
    // 12 muls / 4 mul PEs = 3
    assert!(min_ii(&dfg, &cgra).res_mii >= 3);
}

#[test]
fn spr_maps_kernels_on_heterogeneous_array() {
    let cgra = hetero_8x8();
    for id in [KernelId::Fir, KernelId::MatrixMultiply] {
        let dfg = kernels::generate(id, KernelScale::Tiny);
        let mapping = SprMapper::default()
            .map(&dfg, &cgra, None)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        mapping.verify(&dfg, &cgra).unwrap();
        for op in dfg.op_ids() {
            if dfg.op(op).kind == OpKind::Mul {
                assert!(
                    cgra.has_multiplier(mapping.pe_of(op)),
                    "{id}: multiply on a plain PE"
                );
            }
        }
    }
}

#[test]
fn ultrafast_maps_on_heterogeneous_array() {
    let cgra = hetero_8x8();
    let dfg = kernels::generate(KernelId::Conv2d, KernelScale::Tiny);
    let mapping = UltraFastMapper::default().map(&dfg, &cgra, None).unwrap();
    mapping.verify(&dfg, &cgra).unwrap();
}

#[test]
fn adl_round_trips_heterogeneity() {
    let cfg = CgraConfig {
        mul_every_n_columns: 2,
        ..CgraConfig::scaled_8x8()
    };
    let text = cfg.to_text();
    assert!(text.contains("mul columns 2"));
    assert_eq!(CgraConfig::from_text(&text).unwrap(), cfg);
}

#[test]
fn heterogeneity_costs_ii_but_saves_multipliers() {
    // the REVAMP trade-off: fewer multipliers can only raise the II
    let homo = Cgra::new(CgraConfig::scaled_8x8()).unwrap();
    let hetero = hetero_8x8();
    let dfg = kernels::generate(KernelId::MatrixMultiply, KernelScale::Tiny);
    let m_homo = SprMapper::default().map(&dfg, &homo, None).unwrap();
    let m_het = SprMapper::default().map(&dfg, &hetero, None).unwrap();
    assert!(m_het.ii() >= m_homo.ii());
}
