//! `panorama` — the command-line CGRA compiler.
//!
//! ```text
//! panorama compile --dfg kernel.dfg --arch cgra.adl
//!                  [--mapper spr|ultrafast|exhaustive|sat|portfolio]
//!                  [--baseline] [--threads N] [--max-ii N] [--simulate N]
//!                  [--configware] [--dot] [--analyze] [--sat-report FILE]
//! panorama analyze <kernel> [--arch cgra.adl] [--no-fold] [--no-cse] [--no-dce]
//!                  [--out FILE] [--json]
//! panorama trace <kernel> [--arch cgra.adl]
//!                [--mapper spr|ultrafast|exhaustive|sat|portfolio]
//!                [--baseline] [--threads N] [--max-ii N] [--out FILE]
//! panorama exec <kernel> [--arch cgra.adl]
//!               [--mapper spr|ultrafast|exhaustive|sat|portfolio]
//!               [--iterations N] [--seed N] [--out FILE] [--json]
//!               [--trace FILE]
//! panorama lint --dfg kernel.dfg [--arch cgra.adl] [--max-ii N] [--json]
//!               [--report FILE]
//! panorama fuzz [--seed N] [--cases N] [--max-nodes N] [--shrink-evals N]
//!               [--max-seconds S] [--corpus DIR] [--write-corpus]
//!               [--out FILE] [--json]
//! panorama serve [--addr IP:PORT] [--workers N] [--queue-depth N]
//!                [--deadline-ms MS] [--result-cache N] [--mrrg-cache N]
//!                [--warm-cache]
//! panorama bench [--json] [--out FILE] [--stable-out FILE]
//!                [--mapper spr|ultrafast|sat] [--threads N]
//!                [--check FILE] [--max-kernel-seconds S] [--ceiling-scale X]
//!                [--trace FILE]
//! panorama kernels [--scale tiny|scaled|paper]
//! panorama info --arch cgra.adl
//! ```
//!
//! `compile` reads a DFG in the text format (`--dfg -` for stdin, or a
//! built-in kernel name like `fir`), an architecture in ADL form (or a
//! preset like `8x8`), runs the PANORAMA pipeline, and reports the mapping;
//! `--analyze` first runs the equivalence-checked DFG optimizer of
//! [`panorama_analyze`] and maps the optimized graph, and `--trace FILE`
//! additionally records every pipeline phase and writes the
//! `panorama-trace-v1` JSON. `analyze` runs the optimizer *without*
//! mapping: it prints the op/dependence shrink, the exact
//! recurrence-constrained II floor (with the cycle that proves it), and
//! the `ANLZ` diagnostics; `--out` writes the `panorama-analyze-v1` JSON.
//! `trace` is the profiling spin of a compile run:
//! it always records and prints the per-phase profile table instead of the
//! mapping details. `exec` compiles a kernel and then *runs* the emitted
//! configware on the data-carrying cycle-accurate machine of
//! [`panorama_exec`], comparing every produced token against the DFG
//! reference interpreter under five input-vector families; `--out`/`--json`
//! emit the deterministic `panorama-exec-v1` report and a recorded
//! divergence exits nonzero. `lint` runs the static diagnostics of [`panorama_lint`]
//! over the same inputs without mapping anything (`--report` validates a
//! recorded trace/serve/fuzz/sat/analyze report file instead,
//! auto-detecting the schema). `bench` measures the 12-kernel suite
//! in parallel and sequential modes, verifies both produce identical
//! mappings, and can gate CI against a checked-in JSON baseline; the
//! ceiling of that gate is widened by `--ceiling-scale` (defaulting to a
//! calibration probe, so slow CI machines don't trip the absolute bound).
//! `fuzz` runs the deterministic differential fuzzing harness of
//! [`panorama_fuzz`]: seeded random DFG/architecture sweeps, both
//! lower-level backends, verify/simulate/exact-II oracle cross-checks,
//! failing-case minimization, and regression-corpus replay; its
//! `panorama-fuzz-v2` JSON report is what `lint --fuzz-json` validates.

use panorama::{AnalyzeConfig, BackendId, Panorama, PanoramaConfig};
use panorama_analyze::{analyze, analyze_diagnostics};
use panorama_arch::{Cgra, CgraConfig};
use panorama_dfg::{kernels, Dfg, KernelId, KernelScale};
use panorama_exec::{exec_report_json, execute, ExecOptions};
use panorama_lint::{
    lint_analyze_json, lint_exec_json, lint_fuzz_json, lint_sat_json, lint_serve_json,
    lint_trace_json, Diagnostics, LintContext, Registry,
};
use panorama_mapper::{
    min_ii, Configware, ExactMapper, IiAttempt, LowerLevelMapper, SatMapper, SprMapper,
    UltraFastMapper,
};
use panorama_sim::simulate;
use panorama_trace::{RecordingSink, TraceEvent, TraceReport, Tracer};
use std::collections::HashMap;
use std::error::Error;
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage:\n  \
     panorama compile --dfg <file|-|kernel-name> [--arch <file|preset>] \
[--mapper spr|ultrafast|exhaustive|sat|portfolio] [--baseline] \
[--scale tiny|scaled|paper] [--threads <n>] [--max-ii <ii>] \
[--simulate <iters>] [--configware] [--dot] [--trace <file>] \
[--sat-report <file>] [--analyze] [--json]\n  \
     panorama analyze <kernel-name|file|-> [--arch <file|preset>] \
[--scale tiny|scaled|paper] [--no-fold] [--no-cse] [--no-dce] [--out <file>] \
[--json]\n  \
     panorama trace <kernel-name|file|-> [--arch <file|preset>] \
[--mapper spr|ultrafast|exhaustive|sat|portfolio] [--baseline] \
[--scale tiny|scaled|paper] [--threads <n>] [--max-ii <ii>] [--out <file>]\n  \
     panorama exec <kernel-name|file|-> [--arch <file|preset>] \
[--mapper spr|ultrafast|exhaustive|sat|portfolio] [--scale tiny|scaled|paper] \
[--threads <n>] [--max-ii <ii>] [--iterations <n>] [--seed <n>] \
[--out <file>] [--json] [--trace <file>]\n  \
     panorama lint [--dfg <file|-|kernel-name>] [--arch <file|preset>] \
[--scale tiny|scaled|paper] [--max-ii <ii>] [--report <file>] [--json]\n  \
     panorama fuzz [--seed <n>] [--cases <n>] [--max-nodes <n>] \
[--shrink-evals <n>] [--max-seconds <s>] [--corpus <dir>] [--write-corpus] \
[--out <file>] [--json]\n  \
     panorama serve [--addr <ip:port>] [--workers <n>] [--queue-depth <n>] \
[--deadline-ms <ms>] [--result-cache <n>] [--mrrg-cache <n>] [--threads <n>] \
[--warm-cache] [--cache-dir <dir>] [--cache-budget <bytes>] \
[--quota-rps <n>] [--quota-burst <n>] [--io-timeout-ms <ms>]\n  \
     panorama bench [--json] [--out <file>] [--stable-out <file>] \
[--mapper spr|ultrafast|sat] [--threads <n>] [--check <baseline.json>] \
[--max-kernel-seconds <s>] [--ceiling-scale <x>] [--trace <file>] [--analyze]\n  \
     panorama bench --serve [--clients <n>] [--requests <n>] [--workers <n>] \
[--cache-dir <dir>] [--out <file>] [--stable-out <file>] \
[--check <baseline.json>]\n  \
     panorama kernels [--scale tiny|scaled|paper]\n  \
     panorama info --arch <file|preset>\n\n\
     presets: 4x4, 8x8, 9x9, 16x16, 6x1"
}

/// Flags a command accepts: `(name, takes_no_value)`.
type FlagSpec = &'static [(&'static str, bool)];

const COMPILE_FLAGS: FlagSpec = &[
    ("dfg", false),
    ("arch", false),
    ("mapper", false),
    ("baseline", true),
    ("scale", false),
    ("threads", false),
    ("max-ii", false),
    ("simulate", false),
    ("configware", true),
    ("dot", true),
    ("trace", false),
    ("sat-report", false),
    ("analyze", true),
    ("no-analyze", true),
    ("json", true),
];
const ANALYZE_FLAGS: FlagSpec = &[
    ("arch", false),
    ("scale", false),
    ("no-fold", true),
    ("no-cse", true),
    ("no-dce", true),
    ("out", false),
    ("json", true),
];
const TRACE_FLAGS: FlagSpec = &[
    ("arch", false),
    ("mapper", false),
    ("baseline", true),
    ("scale", false),
    ("threads", false),
    ("max-ii", false),
    ("out", false),
];
const EXEC_FLAGS: FlagSpec = &[
    ("arch", false),
    ("mapper", false),
    ("scale", false),
    ("threads", false),
    ("max-ii", false),
    ("iterations", false),
    ("seed", false),
    ("out", false),
    ("json", true),
    ("trace", false),
];
const BENCH_FLAGS: FlagSpec = &[
    ("json", true),
    ("out", false),
    ("stable-out", false),
    ("mapper", false),
    ("threads", false),
    ("check", false),
    ("max-kernel-seconds", false),
    ("ceiling-scale", false),
    ("trace", false),
    ("analyze", true),
    ("serve", true),
    ("clients", false),
    ("requests", false),
    ("workers", false),
    ("cache-dir", false),
];
const LINT_FLAGS: FlagSpec = &[
    ("dfg", false),
    ("arch", false),
    ("scale", false),
    ("max-ii", false),
    ("json", true),
    ("report", false),
    ("trace-json", false),
    ("serve-json", false),
    ("fuzz-json", false),
];
const FUZZ_FLAGS: FlagSpec = &[
    ("seed", false),
    ("cases", false),
    ("max-nodes", false),
    ("shrink-evals", false),
    ("max-seconds", false),
    ("corpus", false),
    ("write-corpus", true),
    ("out", false),
    ("json", true),
];
const KERNELS_FLAGS: FlagSpec = &[("scale", false)];
const INFO_FLAGS: FlagSpec = &[("arch", false)];
const SERVE_FLAGS: FlagSpec = &[
    ("addr", false),
    ("workers", false),
    ("queue-depth", false),
    ("deadline-ms", false),
    ("result-cache", false),
    ("mrrg-cache", false),
    ("threads", false),
    ("analyze", true),
    ("warm-cache", true),
    ("cache-dir", false),
    ("cache-budget", false),
    ("quota-rps", false),
    ("quota-burst", false),
    ("io-timeout-ms", false),
];

fn parse_flags(
    cmd: &str,
    args: &[String],
    spec: FlagSpec,
) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let Some(&(_, boolean)) = spec.iter().find(|(n, _)| *n == name) else {
                return Err(format!(
                    "unknown flag `--{name}` for `{cmd}` (accepted: {})",
                    spec.iter()
                        .map(|(n, _)| format!("--{n}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            };
            if boolean {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    Ok(flags)
}

fn parse_max_ii(flags: &HashMap<String, String>) -> Result<Option<usize>, String> {
    flags
        .get("max-ii")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| format!("--max-ii needs a positive integer, got `{s}`"))
        })
        .transpose()
}

/// `--threads N` (0 or absent = one worker per core).
fn parse_threads(flags: &HashMap<String, String>) -> Result<usize, String> {
    flags.get("threads").map_or(Ok(0), |s| {
        s.parse::<usize>()
            .map_err(|_| format!("--threads needs a non-negative integer, got `{s}`"))
    })
}

fn parse_scale(s: Option<&String>) -> Result<KernelScale, String> {
    match s.map(String::as_str) {
        None | Some("scaled") => Ok(KernelScale::Scaled),
        Some("tiny") => Ok(KernelScale::Tiny),
        Some("paper") => Ok(KernelScale::Paper),
        Some(other) => Err(format!("unknown scale `{other}`")),
    }
}

fn load_arch(spec: Option<&String>) -> Result<Cgra, Box<dyn Error>> {
    let config = match spec.map(String::as_str) {
        None | Some("8x8") => CgraConfig::scaled_8x8(),
        Some("4x4") => CgraConfig::small_4x4(),
        Some("9x9") => CgraConfig::paper_9x9(),
        Some("16x16") => CgraConfig::paper_16x16(),
        Some("6x1") => CgraConfig::linear_6x1(),
        Some(path) => CgraConfig::from_text(&std::fs::read_to_string(path)?)?,
    };
    Ok(Cgra::new(config)?)
}

fn load_dfg(spec: &str, scale: KernelScale) -> Result<Dfg, Box<dyn Error>> {
    // built-in kernel names first
    if let Some(id) = KernelId::ALL.iter().find(|id| {
        id.name().eq_ignore_ascii_case(spec) || format!("{id:?}").eq_ignore_ascii_case(spec)
    }) {
        return Ok(kernels::generate(*id, scale));
    }
    let text = if spec == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(spec)?
    };
    Ok(Dfg::from_text(&text)?)
}

fn cmd_compile(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let scale = parse_scale(flags.get("scale"))?;
    let dfg = load_dfg(
        flags
            .get("dfg")
            .ok_or("`compile` needs --dfg <file|-|kernel-name>")?,
        scale,
    )?;
    let cgra = load_arch(flags.get("arch"))?;
    eprintln!(
        "kernel `{}`: {} | CGRA {}x{} ({} clusters)",
        dfg.name(),
        dfg.stats(),
        cgra.config().rows,
        cgra.config().cols,
        cgra.num_clusters()
    );
    if flags.contains_key("dot") {
        println!("{}", dfg.to_dot());
    }

    let mapper_name = flags.get("mapper").map_or("spr", String::as_str);
    let threads = parse_threads(flags)?;
    let compiler = Panorama::new(PanoramaConfig {
        max_ii: parse_max_ii(flags)?,
        threads,
        analyze: (flags.contains_key("analyze") && !flags.contains_key("no-analyze"))
            .then(AnalyzeConfig::default),
        backends: portfolio_backends(mapper_name),
        ..PanoramaConfig::default()
    });
    let baseline = flags.contains_key("baseline");
    let sink = flags.contains_key("trace").then(RecordingSink::shared);
    let tracer = match &sink {
        Some(sink) => Tracer::new(sink.clone()),
        None => Tracer::disabled(),
    };
    let (report, sat_attempts) =
        run_mapper(&compiler, &dfg, &cgra, mapper_name, baseline, &tracer)?;
    if let (Some(path), Some(sink)) = (flags.get("trace"), &sink) {
        let trace = trace_report(&dfg, flags, mapper_name, threads, &report, sink.take());
        std::fs::write(path, trace.to_json())?;
        eprintln!("wrote trace {path}");
    }
    // With `--analyze` the mapping targets the optimized graph, so verify,
    // simulate and configware-generate against it, not the input.
    let mapped = report.mapped_dfg(&dfg);
    if let Some(analyzed) = report.analyzed_dfg() {
        eprintln!(
            "analyze: {} ops -> {} ops before mapping",
            dfg.num_ops(),
            analyzed.num_ops()
        );
    }
    let mapping = report.mapping();
    mapping.verify(mapped, &cgra)?;
    if let Some(path) = flags.get("sat-report") {
        let Some(attempts) = &sat_attempts else {
            return Err("--sat-report requires --mapper sat".into());
        };
        let doc = sat_report_json(
            dfg.name(),
            flags.get("arch").map_or("8x8", String::as_str),
            min_ii(mapped, &cgra).mii(),
            mapping.ii(),
            attempts,
        );
        std::fs::write(path, doc)?;
        eprintln!("wrote SAT report {path}");
    }
    if flags.contains_key("json") {
        // The canonical deterministic document — byte-identical to what
        // `panorama serve` returns for the same inputs.
        println!(
            "{}",
            report.to_json(dfg.name(), flags.get("arch").map_or("8x8", String::as_str))
        );
    } else {
        println!(
            "mapped with {}{} at II {} (MII {}, QoM {:.2}) in {:.2?}",
            if baseline { "" } else { "Pan-" },
            mapping.mapper(),
            mapping.ii(),
            mapping.mii(),
            mapping.qom(),
            report.total_time()
        );
        if let Some(plan) = report.plan() {
            println!(
                "higher-level: {} DFG clusters, zeta {}, histogram {:?}",
                plan.cdg().num_clusters(),
                plan.cluster_map().zeta1(),
                plan.cluster_map().histogram()
            );
        }
    }
    if let Some(iters) = flags.get("simulate") {
        let iters: usize = iters.parse()?;
        match simulate(mapped, &cgra, mapping, iters) {
            Ok(sim) => println!(
                "simulation: {} iterations, {} deliveries checked, FU util {:.0}%, link util {:.0}%",
                sim.iterations,
                sim.checked_deliveries,
                sim.fu_utilization * 100.0,
                sim.link_utilization * 100.0
            ),
            Err(e) => println!("simulation unavailable: {e}"),
        }
    }
    if flags.contains_key("configware") && mapping.routes().is_some() {
        let cfg = Configware::generate(mapped, &cgra, mapping);
        println!(
            "configware: {} active words, ~{} bits",
            cfg.active_words(),
            cfg.size_bits()
        );
        print!("{}", cfg.to_text(&cgra));
    }
    Ok(())
}

/// A compile report plus, for `--mapper sat` only, the drained per-II
/// attempt log that backs `--sat-report`.
type MapperRun = (panorama::CompileReport, Option<Vec<IiAttempt>>);

/// Runs the named lower-level mapper through the pipeline (or the
/// whole-array baseline, or the multi-backend portfolio), recording into
/// `tracer` when it is enabled. For `--mapper sat` the drained per-II
/// attempt log rides along for `--sat-report`.
fn run_mapper(
    compiler: &Panorama,
    dfg: &Dfg,
    cgra: &Cgra,
    mapper_name: &str,
    baseline: bool,
    tracer: &Tracer,
) -> Result<MapperRun, Box<dyn Error>> {
    let run = |m: &dyn LowerLevelMapper| {
        if baseline {
            compiler.compile_baseline_traced(dfg, cgra, &DynMapper(m), tracer)
        } else {
            compiler.compile_traced(dfg, cgra, &DynMapper(m), tracer)
        }
    };
    Ok(match mapper_name {
        "spr" => (run(&SprMapper::default())?, None),
        "ultrafast" => (run(&UltraFastMapper::default())?, None),
        "exhaustive" => (run(&ExactMapper::default())?, None),
        "sat" => {
            let mapper = SatMapper::default();
            let report = run(&mapper)?;
            (report, Some(mapper.take_attempts()))
        }
        "portfolio" => {
            if baseline {
                return Err("--baseline races a single mapper; pick one with --mapper".into());
            }
            (compiler.compile_portfolio_traced(dfg, cgra, tracer)?, None)
        }
        other => return Err(format!("unknown mapper `{other}`").into()),
    })
}

/// Assembles the `panorama-sat-v1` attempt-log document that
/// `compile --mapper sat --sat-report` writes and `lint --report`
/// validates (SAT001–SAT003).
fn sat_report_json(
    kernel: &str,
    arch: &str,
    mii: usize,
    mapped_ii: usize,
    attempts: &[IiAttempt],
) -> String {
    use std::fmt::Write as _;
    let config = panorama_mapper::SatMapperConfig::default();
    let max_ii = mii * config.max_ii_factor + config.max_ii_offset;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\": \"panorama-sat-v1\", \"kernel\": {}, \"arch\": {}, \
         \"mii\": {mii}, \"max_ii\": {max_ii}, \"mapped_ii\": {mapped_ii}, \
         \"max_vars\": {}, \"max_clauses\": {}, \"attempts\": [",
        panorama_trace::json::string(kernel),
        panorama_trace::json::string(arch),
        config.max_vars,
        config.max_clauses,
    );
    for (i, a) in attempts.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"ii\": {}, \"result\": \"{}\", \"refinements\": {}, \
             \"decode_mismatches\": {}, \"vars\": {}, \"clauses\": {}, \"conflicts\": {}, \
             \"propagations\": {}, \"decisions\": {}, \"restarts\": {}}}",
            if i == 0 { "" } else { ", " },
            a.ii,
            a.result,
            a.refinements,
            a.decode_mismatches,
            a.vars,
            a.clauses,
            a.conflicts,
            a.propagations,
            a.decisions,
            a.restarts,
        );
    }
    out.push_str("]}\n");
    out
}

/// Assembles the `panorama-trace-v1` report for one compile run.
fn trace_report(
    dfg: &Dfg,
    flags: &HashMap<String, String>,
    mapper_name: &str,
    threads: usize,
    report: &panorama::CompileReport,
    events: Vec<TraceEvent>,
) -> TraceReport {
    TraceReport {
        kernel: dfg.name().to_string(),
        arch: flags.get("arch").map_or("8x8", String::as_str).to_string(),
        mapper: mapper_name.to_string(),
        threads: resolved_threads(threads),
        wall_ns: report.total_time().as_nanos() as u64,
        events,
    }
}

/// `--mapper portfolio` races every registered backend; every other
/// spelling keeps the single-backend default (ignored by the
/// single-mapper entry points).
fn portfolio_backends(mapper_name: &str) -> Vec<BackendId> {
    if mapper_name == "portfolio" {
        BackendId::ALL.to_vec()
    } else {
        PanoramaConfig::default().backends
    }
}

/// `0` (auto) resolved to one worker per available core.
fn resolved_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// `panorama trace`: compile one kernel with recording always on and print
/// the per-phase profile table instead of the mapping details; `--out`
/// additionally writes the `panorama-trace-v1` JSON.
fn cmd_trace(kernel: &str, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let scale = parse_scale(flags.get("scale"))?;
    let dfg = load_dfg(kernel, scale)?;
    let cgra = load_arch(flags.get("arch"))?;
    let mapper_name = flags.get("mapper").map_or("spr", String::as_str);
    let threads = parse_threads(flags)?;
    let compiler = Panorama::new(PanoramaConfig {
        max_ii: parse_max_ii(flags)?,
        threads,
        backends: portfolio_backends(mapper_name),
        ..PanoramaConfig::default()
    });
    let baseline = flags.contains_key("baseline");
    let sink = RecordingSink::shared();
    let tracer = Tracer::new(sink.clone());
    let (report, _) = run_mapper(&compiler, &dfg, &cgra, mapper_name, baseline, &tracer)?;
    let mapping = report.mapping();
    eprintln!(
        "mapped `{}` with {} at II {} in {:.2?}",
        dfg.name(),
        mapping.mapper(),
        mapping.ii(),
        report.total_time()
    );
    let trace = trace_report(&dfg, flags, mapper_name, threads, &report, sink.take());
    print!("{}", trace.render_profile());
    if let Some(path) = flags.get("out") {
        std::fs::write(path, trace.to_json())?;
        eprintln!("wrote trace {path}");
    }
    Ok(())
}

/// `panorama exec`: compile one kernel, then *run* the emitted configware
/// on the data-carrying cycle-accurate machine and compare every produced
/// token against the DFG reference interpreter under all five
/// input-vector families (seeded, zeros, ones, `i32::MIN`, `i32::MAX`).
/// `--out`/`--json` emit the deterministic `panorama-exec-v1` report
/// (byte-identical per seed); `--trace` records the compile phases plus
/// `exec`/`exec.run` spans. Exits nonzero on any value-level divergence.
fn cmd_exec(kernel: &str, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let scale = parse_scale(flags.get("scale"))?;
    let dfg = load_dfg(kernel, scale)?;
    let cgra = load_arch(flags.get("arch"))?;
    let mapper_name = flags.get("mapper").map_or("spr", String::as_str);
    let threads = parse_threads(flags)?;
    let compiler = Panorama::new(PanoramaConfig {
        max_ii: parse_max_ii(flags)?,
        threads,
        backends: portfolio_backends(mapper_name),
        ..PanoramaConfig::default()
    });
    let sink = flags.contains_key("trace").then(RecordingSink::shared);
    let tracer = match &sink {
        Some(sink) => Tracer::new(sink.clone()),
        None => Tracer::disabled(),
    };
    let (report, _) = run_mapper(&compiler, &dfg, &cgra, mapper_name, false, &tracer)?;
    let mapped = report.mapped_dfg(&dfg);
    let mapping = report.mapping();
    mapping.verify(mapped, &cgra)?;
    let defaults = ExecOptions::default();
    let opts = ExecOptions {
        iterations: flags
            .get("iterations")
            .map_or(Ok(defaults.iterations), |s| {
                s.parse::<usize>()
                    .map_err(|_| format!("--iterations needs a positive integer, got `{s}`"))
            })?,
        seed: flags.get("seed").map_or(Ok(defaults.seed), |s| {
            s.parse::<u64>()
                .map_err(|_| format!("--seed needs a non-negative integer, got `{s}`"))
        })?,
    };
    // The exec spans ride in their own collector; the high sequence base
    // keeps them sorted after every pipeline event of the same candidate.
    let mut col = tracer.collector_from(
        panorama_trace::NO_CANDIDATE,
        panorama_trace::SEQ_BASE_MAP * 64,
    );
    let span = col.start();
    let outcome = execute(mapped, &cgra, mapping, &opts)?;
    let divergences = outcome
        .vectors
        .iter()
        .filter(|v| v.divergence.is_some())
        .count();
    for v in &outcome.vectors {
        col.event(
            "exec.run",
            &[
                ("checked", v.checked as i64),
                ("output_tokens", v.output_tokens as i64),
                ("diverged", i64::from(v.divergence.is_some())),
            ],
        );
    }
    col.record(
        "exec",
        span,
        &[
            ("vectors", outcome.vectors.len() as i64),
            ("checked", outcome.checked_total() as i64),
            ("divergences", divergences as i64),
        ],
    );
    tracer.submit(vec![col]);
    if let (Some(path), Some(sink)) = (flags.get("trace"), &sink) {
        let trace = trace_report(&dfg, flags, mapper_name, threads, &report, sink.take());
        std::fs::write(path, trace.to_json())?;
        eprintln!("wrote trace {path}");
    }
    let arch_name = flags.get("arch").map_or("8x8", String::as_str);
    let doc = exec_report_json(dfg.name(), arch_name, mapping.mapper(), &outcome);
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &doc)?;
        eprintln!("wrote exec report {path}");
    }
    if flags.contains_key("json") {
        print!("{doc}");
    } else {
        eprintln!(
            "mapped `{}` with {} at II {}; executing {} iterations x {} vectors (seed {})",
            dfg.name(),
            mapping.mapper(),
            mapping.ii(),
            outcome.iterations,
            outcome.vectors.len(),
            outcome.seed
        );
        println!(
            "{:<8} {:>8} {:>8} {:>18}  divergence",
            "vector", "checked", "tokens", "digest"
        );
        for v in &outcome.vectors {
            println!(
                "{:<8} {:>8} {:>8} {:>#18x}  {}",
                v.vector,
                v.checked,
                v.output_tokens,
                v.output_digest,
                v.divergence.as_deref().unwrap_or("-")
            );
        }
        println!(
            "exec: {} tokens value-equal to the reference across {} vectors",
            outcome.checked_total(),
            outcome.vectors.len()
        );
    }
    if let Some((vector, msg)) = outcome.first_divergence() {
        return Err(format!("execution diverged on the `{vector}` vector: {msg}").into());
    }
    Ok(())
}

/// `panorama analyze`: run the equivalence-checked DFG optimizer and the
/// exact recurrence-cycle analysis without mapping anything. Prints the
/// op/dependence shrink, the RecMII bound with its witness cycle, and the
/// `ANLZ` diagnostics; `--out` writes the `panorama-analyze-v1` JSON.
/// Exits nonzero when any error-severity finding is reported.
fn cmd_analyze(kernel: &str, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let scale = parse_scale(flags.get("scale"))?;
    let dfg = load_dfg(kernel, scale)?;
    let cgra = load_arch(flags.get("arch"))?;
    let config = AnalyzeConfig {
        fold_constants: !flags.contains_key("no-fold"),
        merge_common: !flags.contains_key("no-cse"),
        eliminate_dead: !flags.contains_key("no-dce"),
        ..AnalyzeConfig::default()
    };
    let analysis = analyze(&dfg, &config)?;
    let r = &analysis.report;
    if flags.contains_key("json") {
        println!("{}", r.to_json());
    } else {
        eprintln!(
            "kernel `{}`: {} | CGRA {}x{}",
            dfg.name(),
            dfg.stats(),
            cgra.config().rows,
            cgra.config().cols
        );
        println!(
            "ops {} -> {} (folded {}, merged {}, removed {}) in {} round(s)",
            r.ops_before, r.ops_after, r.folded, r.merged, r.removed, r.rounds
        );
        println!(
            "deps {} -> {}, {} op(s) provably constant, critical path {} -> {}",
            r.deps_before,
            r.deps_after,
            r.known_constants,
            r.critical_path_before,
            r.critical_path_after
        );
        println!(
            "exact RecMII {} -> {} (equivalence checked over {} iterations)",
            r.rec_mii_before, r.rec_mii_after, r.equiv_iterations
        );
        if r.witness.is_empty() {
            println!("no recurrence cycle: II floor is resource-bound only");
        } else {
            println!(
                "witness cycle {:?}: latency {} over distance {}",
                r.witness, r.witness_latency, r.witness_distance
            );
        }
    }
    let mut diags = Diagnostics::new();
    analyze_diagnostics(&dfg, &analysis, Some(&cgra), &mut diags);
    if !diags.is_empty() && !flags.contains_key("json") {
        print!("{}", diags.render_human());
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(path, r.to_json())?;
        eprintln!("wrote analyze report {path}");
    }
    if diags.has_errors() {
        return Err(format!("analyze found {} error(s)", diags.num_errors()).into());
    }
    Ok(())
}

/// Object-safe shim so one closure can drive any mapper.
struct DynMapper<'a>(&'a dyn LowerLevelMapper);

impl LowerLevelMapper for DynMapper<'_> {
    fn map(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&panorama_mapper::Restriction>,
    ) -> Result<panorama_mapper::Mapping, panorama_mapper::MapError> {
        self.0.map(dfg, cgra, restriction)
    }

    fn map_with_control(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&panorama_mapper::Restriction>,
        control: Option<&panorama_mapper::SearchControl>,
    ) -> Result<panorama_mapper::Mapping, panorama_mapper::MapError> {
        // forward rather than inherit the default, so the portfolio bound
        // reaches the wrapped mapper's II search
        self.0.map_with_control(dfg, cgra, restriction, control)
    }

    fn map_traced(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        restriction: Option<&panorama_mapper::Restriction>,
        control: Option<&panorama_mapper::SearchControl>,
        trace: &mut panorama_trace::SpanCollector,
    ) -> Result<panorama_mapper::Mapping, panorama_mapper::MapError> {
        // forward so the wrapped mapper's events reach the collector
        self.0.map_traced(dfg, cgra, restriction, control, trace)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// `panorama bench`: the perf harness over the 12-kernel suite. With
/// `--json` the report is written to `--out` (default `BENCH_PR7.json`)
/// and `--stable-out` additionally writes the wall-clock-free projection
/// (byte-identical across runs and thread counts — CI `cmp`s two of
/// them); with `--check` the fresh run is gated against a checked-in
/// baseline.
fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    if flags.contains_key("serve") {
        return cmd_bench_serve(flags);
    }
    let options = panorama_bench::BenchOptions {
        threads: parse_threads(flags)?,
        mapper: match flags.get("mapper").map(String::as_str) {
            None | Some("ultrafast") => panorama_bench::BenchMapper::UltraFast,
            Some("spr") => panorama_bench::BenchMapper::Spr,
            Some("sat") => panorama_bench::BenchMapper::Sat,
            Some(other) => return Err(format!("unknown bench mapper `{other}`").into()),
        },
        trace: flags.contains_key("trace"),
        analyze: flags.contains_key("analyze"),
        ..panorama_bench::BenchOptions::default()
    };
    eprintln!(
        "benching 12 kernels x {} preset(s) with {} ({} threads)...",
        if options.mapper == panorama_bench::BenchMapper::Sat {
            1
        } else {
            2
        },
        options.mapper.name(),
        if options.threads == 0 {
            "auto".to_string()
        } else {
            options.threads.to_string()
        }
    );
    let report = panorama_bench::perf::run(&options)?;
    println!(
        "{:<18} {:>6} {:>4} {:>4} {:>10} {:>10}  identical",
        "kernel", "preset", "II", "MII", "par(s)", "seq(s)"
    );
    for k in &report.kernels {
        println!(
            "{:<18} {:>6} {:>4} {:>4} {:>10.3} {:>10.3}  {}",
            k.kernel, k.preset, k.ii, k.mii, k.wall_seconds, k.wall_seconds_single, k.identical
        );
    }
    println!(
        "suite: {:.2}s parallel ({} threads) vs {:.2}s sequential -> {:.2}x speedup",
        report.suite_wall_seconds, report.threads, report.suite_wall_seconds_single, report.speedup
    );
    if !report.all_identical() {
        return Err("parallel and sequential compiles disagree".into());
    }
    if let Some(w) = &report.warm {
        println!(
            "warm replay: {} kernels, {} cache hits, {:.2}s warm vs {:.2}s cold",
            w.replays.len(),
            w.hits,
            w.wall_seconds,
            w.wall_seconds_cold
        );
    }
    if flags.contains_key("json") {
        let out = flags.get("out").map_or("BENCH_PR7.json", String::as_str);
        std::fs::write(out, report.to_json())?;
        eprintln!("wrote {out}");
    }
    if let Some(path) = flags.get("stable-out") {
        std::fs::write(path, report.to_stable_json())?;
        eprintln!("wrote stable projection {path}");
    }
    if let Some(path) = flags.get("trace") {
        std::fs::write(path, report.to_trace_report().to_json())?;
        eprintln!("wrote trace {path}");
    }
    if let Some(baseline_path) = flags.get("check") {
        let ceiling = flags
            .get("max-kernel-seconds")
            .map_or(Ok(120.0), |s| s.parse::<f64>())
            .map_err(|_| "--max-kernel-seconds needs a number")?;
        let scale = match flags.get("ceiling-scale") {
            Some(s) => s
                .parse::<f64>()
                .map_err(|_| "--ceiling-scale needs a number")?,
            // no explicit scale: probe this machine so slow CI hosts widen
            // the absolute wall-clock ceiling instead of tripping it
            None => panorama_bench::calibration_scale(),
        };
        if scale > 1.0 {
            eprintln!("ceiling scale {scale:.2}x");
        }
        let baseline = std::fs::read_to_string(baseline_path)?;
        report
            .check_against_baseline(&baseline, ceiling, scale)
            .map_err(|e| format!("baseline check failed:\n{e}"))?;
        eprintln!("baseline check passed ({baseline_path})");
    }
    Ok(())
}

/// `panorama bench --serve`: the deterministic serve-layer load bench.
/// Drives N concurrent clients through a real socket against an
/// in-process daemon, twice over the same disk-cache directory, so the
/// warm phase measures restart survival. `--check <baseline>` gates the
/// run on the bench's own invariants (conservation, 100% warm hit rate,
/// disk hits after restart, byte-identical replay) plus shape agreement
/// with the committed baseline.
fn cmd_bench_serve(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let parse_n = |key: &str, default: usize| -> Result<usize, String> {
        flags.get(key).map_or(Ok(default), |s| {
            s.parse::<usize>()
                .map_err(|_| format!("--{key} needs a non-negative integer, got `{s}`"))
        })
    };
    let defaults = panorama_bench::ServeLoadOptions::default();
    let options = panorama_bench::ServeLoadOptions {
        clients: parse_n("clients", defaults.clients)?,
        requests: parse_n("requests", defaults.requests)?,
        workers: parse_n("workers", defaults.workers)?,
        cache_dir: flags
            .get("cache-dir")
            .map_or(defaults.cache_dir, std::path::PathBuf::from),
    };
    eprintln!(
        "serve bench: {} clients x {} requests over {} workers (disk cache {})...",
        options.clients.max(1),
        options.requests,
        options.workers.max(1),
        options.cache_dir.display()
    );
    let report = panorama_bench::run_serve_load(&options)?;
    for (name, p) in [("cold", &report.cold), ("warm", &report.warm)] {
        println!(
            "{name:<5} {:>7.2} req/s  p50 {:>9}ns  p99 {:>9}ns  {} ok / {} not-ok  \
             {} cache hits ({} from disk)",
            p.throughput_rps, p.p50_ns, p.p99_ns, p.ok, p.not_ok, p.cache_hits, p.disk_hits
        );
    }
    println!(
        "replay: {}",
        if report.identical_replay {
            "warm responses byte-identical to cold"
        } else {
            "WARM RESPONSES DIVERGED FROM COLD"
        }
    );
    if flags.contains_key("json") || flags.contains_key("out") {
        let out = flags.get("out").map_or("BENCH_PR8.json", String::as_str);
        std::fs::write(out, report.to_json())?;
        eprintln!("wrote {out}");
    }
    if let Some(path) = flags.get("stable-out") {
        std::fs::write(path, report.to_stable_json())?;
        eprintln!("wrote stable projection {path}");
    }
    if let Some(baseline_path) = flags.get("check") {
        let baseline = std::fs::read_to_string(baseline_path)?;
        report
            .check_against_baseline(&baseline)
            .map_err(|e| format!("serve bench check failed:\n{e}"))?;
        eprintln!("serve bench check passed ({baseline_path})");
    }
    Ok(())
}

/// `panorama fuzz`: the deterministic differential fuzzing harness.
/// Exits nonzero when any oracle disagrees, a backend crashes, or a
/// corpus case fails replay. `--write-corpus` drops each minimized
/// reproducer into the corpus directory as a ready-to-commit `.dfg` file.
fn cmd_fuzz(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let parse_n = |key: &str, default: usize| -> Result<usize, String> {
        flags.get(key).map_or(Ok(default), |s| {
            s.parse::<usize>()
                .map_err(|_| format!("--{key} needs a non-negative integer, got `{s}`"))
        })
    };
    let defaults = panorama_fuzz::FuzzOptions::default();
    let cancel = panorama_mapper::CancelToken::new();
    let opts = panorama_fuzz::FuzzOptions {
        seed: flags.get("seed").map_or(Ok(defaults.seed), |s| {
            s.parse::<u64>()
                .map_err(|_| format!("--seed needs a non-negative integer, got `{s}`"))
        })?,
        cases: parse_n("cases", defaults.cases)?,
        max_nodes: parse_n("max-nodes", defaults.max_nodes)?,
        shrink_evals: parse_n("shrink-evals", defaults.shrink_evals)?,
        oracle: panorama_fuzz::OracleConfig {
            cancel: Some(cancel.clone()),
            ..panorama_fuzz::OracleConfig::default()
        },
        corpus_dir: flags.get("corpus").map(std::path::PathBuf::from),
    };
    if flags.contains_key("write-corpus") && opts.corpus_dir.is_none() {
        return Err("--write-corpus needs --corpus <dir>".into());
    }
    if let Some(s) = flags.get("max-seconds") {
        let seconds = s
            .parse::<u64>()
            .map_err(|_| format!("--max-seconds needs a positive integer, got `{s}`"))?;
        let token = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(seconds));
            token.cancel();
        });
    }
    let report = panorama_fuzz::run(&opts);
    if flags.contains_key("write-corpus") {
        let dir = opts.corpus_dir.as_ref().expect("checked above");
        std::fs::create_dir_all(dir)?;
        for f in &report.failures {
            let name = format!(
                "seed{}-case{}-{}-{}.dfg",
                report.seed, f.case, f.backend, f.oracle
            );
            std::fs::write(dir.join(&name), &f.repro)?;
            eprintln!("wrote {}", dir.join(&name).display());
        }
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json())?;
        eprintln!("wrote fuzz report {path}");
    }
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.summary());
    }
    let corpus_failed = report.corpus.as_ref().map_or(0, |c| c.failed);
    if report.total_failures() > 0 || corpus_failed > 0 {
        return Err(format!(
            "fuzz found {} oracle failure(s) and {} corpus failure(s)",
            report.total_failures(),
            corpus_failed
        )
        .into());
    }
    Ok(())
}

/// Reads a lint input: a path, or stdin for `-`.
fn read_report(path: &str) -> Result<String, Box<dyn Error>> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        Ok(std::fs::read_to_string(path)?)
    }
}

/// Dispatches a report document to the matching schema linter by its
/// top-level `schema` field. Unparseable documents fall through to the
/// trace linter, which reports the syntax error as a diagnostic.
fn lint_report(text: &str, diags: &mut Diagnostics) -> Result<(), Box<dyn Error>> {
    let schema = panorama_trace::json::parse(text)
        .ok()
        .and_then(|d| d.get("schema").and_then(|s| s.as_str().map(String::from)));
    match schema.as_deref() {
        Some("panorama-serve-metrics-v1") => lint_serve_json(text, diags),
        Some("panorama-fuzz-v2") => lint_fuzz_json(text, diags),
        Some("panorama-analyze-v1") => lint_analyze_json(text, diags),
        Some("panorama-sat-v1") => lint_sat_json(text, diags),
        Some("panorama-exec-v1") => lint_exec_json(text, diags),
        Some("panorama-trace-v1") | None => lint_trace_json(text, diags),
        Some(other) => {
            return Err(format!(
                "--report: unknown schema `{other}` (expected panorama-trace-v1, \
                 panorama-serve-metrics-v1, panorama-fuzz-v2, panorama-sat-v1, \
                 panorama-exec-v1 or panorama-analyze-v1)"
            )
            .into())
        }
    }
    Ok(())
}

/// `panorama lint`: static diagnostics over a kernel (and optionally an
/// architecture) without mapping anything; `--report` validates a recorded
/// trace/serve/fuzz/analyze JSON file instead of (or besides) a kernel,
/// auto-detecting the schema. Exits nonzero when any error-severity
/// finding is reported.
fn cmd_lint(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let scale = parse_scale(flags.get("scale"))?;
    if !["dfg", "report", "trace-json", "serve-json", "fuzz-json"]
        .iter()
        .any(|k| flags.contains_key(*k))
    {
        return Err("`lint` needs --dfg <file|-|kernel-name> and/or --report <file>".into());
    }
    let mut diags = Diagnostics::new();
    if let Some(spec) = flags.get("dfg") {
        let dfg = load_dfg(spec, scale)?;
        let cgra = match flags.get("arch") {
            Some(_) => Some(load_arch(flags.get("arch"))?),
            None => None,
        };
        let ctx = LintContext {
            dfg: Some(&dfg),
            cgra: cgra.as_ref(),
            max_ii: parse_max_ii(flags)?,
            ..LintContext::default()
        };
        diags.extend(Registry::with_default_passes().run(&ctx));
    }
    if let Some(path) = flags.get("report") {
        lint_report(&read_report(path)?, &mut diags)?;
    }
    // Deprecated spellings of `--report` from before schema auto-detection;
    // each still pins its original schema linter.
    type LintFn = fn(&str, &mut Diagnostics);
    let aliases: [(&str, LintFn); 3] = [
        ("trace-json", lint_trace_json),
        ("serve-json", lint_serve_json),
        ("fuzz-json", lint_fuzz_json),
    ];
    for (flag, lint_fn) in aliases {
        if let Some(path) = flags.get(flag) {
            eprintln!("warning: --{flag} is deprecated; use --report {path}");
            lint_fn(&read_report(path)?, &mut diags);
        }
    }
    if flags.contains_key("json") {
        println!("{}", diags.render_json());
    } else {
        print!("{}", diags.render_human());
    }
    if diags.has_errors() {
        return Err(format!("lint found {} error(s)", diags.num_errors()).into());
    }
    Ok(())
}

/// `panorama serve`: run the compile daemon until drained.
///
/// The process cannot install a signal handler without `unsafe`, so the
/// graceful-drain triggers are `POST /admin/shutdown` (loopback-only) and
/// stdin reaching EOF — closing the daemon's stdin (or piping from a
/// process that exits) drains it exactly like the admin endpoint.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let parse_n = |key: &str, default: usize| -> Result<usize, String> {
        flags.get(key).map_or(Ok(default), |s| {
            s.parse::<usize>()
                .map_err(|_| format!("--{key} needs a non-negative integer, got `{s}`"))
        })
    };
    let config = panorama_serve::ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: parse_n("workers", 2)?,
        queue_depth: parse_n("queue-depth", 16)?,
        deadline: match flags.get("deadline-ms") {
            None => None,
            Some(s) => {
                let ms = s
                    .parse::<u64>()
                    .map_err(|_| format!("--deadline-ms needs a positive integer, got `{s}`"))?;
                Some(std::time::Duration::from_millis(ms))
            }
        },
        result_cache_capacity: parse_n("result-cache", 256)?,
        mrrg_cache_capacity: parse_n("mrrg-cache", panorama_arch::DEFAULT_MRRG_CACHE_CAPACITY)?,
        portfolio_threads: parse_threads(flags)?,
        analyze: flags.contains_key("analyze"),
        warm_cache: flags.contains_key("warm-cache"),
        cache_dir: flags.get("cache-dir").map(std::path::PathBuf::from),
        cache_budget: flags.get("cache-budget").map_or(Ok(0), |s| {
            s.parse::<u64>()
                .map_err(|_| format!("--cache-budget needs a byte count, got `{s}`"))
        })?,
        quota_rps: flags.get("quota-rps").map_or(Ok(0), |s| {
            s.parse::<u64>()
                .map_err(|_| format!("--quota-rps needs a non-negative integer, got `{s}`"))
        })?,
        quota_burst: flags.get("quota-burst").map_or(Ok(0), |s| {
            s.parse::<u64>()
                .map_err(|_| format!("--quota-burst needs a non-negative integer, got `{s}`"))
        })?,
        io_timeout: match flags.get("io-timeout-ms") {
            None => panorama_serve::ServeConfig::default().io_timeout,
            Some(s) => {
                let ms = s.parse::<u64>().map_err(|_| {
                    format!("--io-timeout-ms needs a non-negative integer, got `{s}`")
                })?;
                // 0 disables the per-socket read/write timeouts entirely
                (ms > 0).then(|| std::time::Duration::from_millis(ms))
            }
        },
    };
    let server = panorama_serve::Server::bind(config)?;
    let addr = server.local_addr();
    println!("panorama-serve listening on http://{addr}");
    println!(
        "endpoints: POST /compile, POST /compile-batch, POST /lint, GET /healthz, GET /metrics, POST /admin/shutdown"
    );
    println!("drain: POST /admin/shutdown (loopback-only) or close stdin");
    let drain = server.drain_handle();
    std::thread::spawn(move || {
        // Block until stdin closes, then drain. Under a terminal this
        // waits for ^D; under CI the daemon is drained via the endpoint.
        let mut sink = Vec::new();
        let _ = std::io::stdin().lock().read_to_end(&mut sink);
        drain.drain();
    });
    server.run()?;
    println!("panorama-serve drained cleanly");
    Ok(())
}

fn cmd_kernels(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let scale = parse_scale(flags.get("scale"))?;
    println!(
        "{:<18} {:>6} {:>6} {:>7}  paper(n/e/deg)",
        "kernel", "nodes", "edges", "maxdeg"
    );
    for id in KernelId::ALL {
        let s = kernels::generate(id, scale).stats();
        let (pn, pe, pd) = id.paper_stats();
        println!(
            "{:<18} {:>6} {:>6} {:>7}  ({pn}/{pe}/{pd})",
            id.name(),
            s.nodes,
            s.edges,
            s.max_degree
        );
    }
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let cgra = load_arch(flags.get("arch"))?;
    print!("{}", cgra.config().to_text());
    println!(
        "PEs {}  clusters {}  mem PEs {}  links {} ({} inter-cluster)",
        cgra.num_pes(),
        cgra.num_clusters(),
        cgra.num_mem_pes(),
        cgra.links().len(),
        cgra.links().iter().filter(|l| l.inter_cluster).count()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let spec = match cmd.as_str() {
        "compile" => COMPILE_FLAGS,
        "analyze" => ANALYZE_FLAGS,
        "trace" => TRACE_FLAGS,
        "exec" => EXEC_FLAGS,
        "lint" => LINT_FLAGS,
        "bench" => BENCH_FLAGS,
        "kernels" => KERNELS_FLAGS,
        "info" => INFO_FLAGS,
        "serve" => SERVE_FLAGS,
        "fuzz" => FUZZ_FLAGS,
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!(
                "error: unknown command `{other}` (expected compile, analyze, trace, exec, lint, bench, serve, fuzz, kernels, info or help)\n\n{}",
                usage()
            );
            return ExitCode::FAILURE;
        }
    };
    // `trace`, `analyze` and `exec` take their kernel as a positional
    // first argument
    let (positional, rest) = if cmd == "trace" || cmd == "analyze" || cmd == "exec" {
        match rest.split_first() {
            Some((k, r)) if !k.starts_with("--") => (Some(k.as_str()), r),
            _ => {
                eprintln!(
                    "error: `{cmd}` needs a kernel (name, file or `-`) as its first argument\n\n{}",
                    usage()
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        (None, rest)
    };
    let flags = match parse_flags(cmd, rest, spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "compile" => cmd_compile(&flags),
        "analyze" => cmd_analyze(positional.unwrap_or_default(), &flags),
        "trace" => cmd_trace(positional.unwrap_or_default(), &flags),
        "exec" => cmd_exec(positional.unwrap_or_default(), &flags),
        "lint" => cmd_lint(&flags),
        "bench" => cmd_bench(&flags),
        "kernels" => cmd_kernels(&flags),
        "serve" => cmd_serve(&flags),
        "fuzz" => cmd_fuzz(&flags),
        _ => cmd_info(&flags),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
