//! PANORAMA workspace umbrella: the repo-level `examples/` and `tests/`
//! live on this package. The library API is the [`panorama`] crate,
//! re-exported here for convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use panorama::*;
