//! PANORAMA workspace umbrella: the repo-level `examples/` and `tests/`
//! live on this package. The library API is the [`panorama`] crate,
//! re-exported here for convenience.

pub use panorama::*;
