#!/usr/bin/env bash
# Analyze smoke: drives `panorama analyze` over all 12 paper kernels and
# the committed fuzz corpus, and checks the properties CI cares about:
#
#   1. cleanliness — every kernel and corpus DFG analyzes with zero
#      error-severity diagnostics (interpreter equivalence of the
#      rewritten graph is checked inside `analyze` itself, ANLZ005);
#   2. determinism — a second run produces byte-identical
#      panorama-analyze-v1 JSON;
#   3. report hygiene — every report passes the ANLZ lints via
#      `panorama lint --report`;
#   4. no regression — for every kernel the mapped II with --analyze is
#      no worse than the unanalyzed baseline.
#
# Usage: scripts/analyze_smoke.sh [scale]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=./target/release/panorama
SCALE="${1:-tiny}"
TMP="${TMPDIR:-/tmp}"

[ -x "$BIN" ] || { echo "build first: cargo build --release" >&2; exit 1; }

KERNELS="edn idctcols idctrows conv2d matchedfilter matrixmultiply
         cordic kmeansclustering fir jpegfdct jpegidctfst invertmat"

ii_of() { grep -o '"ii":[0-9]*' "$1" | head -1 | cut -d: -f2; }

for k in $KERNELS; do
    echo "== $k: analyze (scale $SCALE), double-run byte identity =="
    "$BIN" analyze "$k" --scale "$SCALE" --out "$TMP/analyze-a.json" >/dev/null
    "$BIN" analyze "$k" --scale "$SCALE" --out "$TMP/analyze-b.json" >/dev/null
    cmp "$TMP/analyze-a.json" "$TMP/analyze-b.json"
    "$BIN" lint --report "$TMP/analyze-a.json"

    echo "== $k: mapped II with --analyze is no worse =="
    "$BIN" compile --dfg "$k" --scale "$SCALE" --json > "$TMP/plain.json"
    "$BIN" compile --dfg "$k" --scale "$SCALE" --json --analyze > "$TMP/opt.json"
    plain=$(ii_of "$TMP/plain.json")
    opt=$(ii_of "$TMP/opt.json")
    [ "$opt" -le "$plain" ] || {
        echo "$k: analyzed II $opt worse than plain II $plain" >&2
        exit 1
    }
    echo "$k: II $plain -> $opt"
done

echo "== corpus replay through the analyzer =="
for f in fuzz/corpus/*.dfg; do
    echo "-- $f"
    "$BIN" analyze "$f" >/dev/null
done

echo "analyze smoke OK"
