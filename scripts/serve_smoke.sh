#!/usr/bin/env bash
# Smoke test for the `panorama serve` daemon, used by the CI `serve-smoke`
# job and runnable locally. Exercises the full serving surface against a
# release binary: health, compile (checked byte-for-byte against the
# offline CLI), lint, metrics (validated by the SERVE* lints), queue
# saturation (503 + Retry-After), and graceful drain (exit code 0).
#
# Uses bash's /dev/tcp instead of curl so it runs in minimal containers.
set -euo pipefail

BIN=${BIN:-target/release/panorama}
PORT=${PORT:-7878}
ADDR=127.0.0.1:$PORT
TMP=$(mktemp -d)
# Kill the whole job table on exit: the stdin-holding tail, the daemon if
# it is still up, and any in-flight background clients.
trap 'rm -rf "$TMP"; kill $(jobs -p) 2>/dev/null || true' EXIT

# http METHOD PATH [BODY] -> response (head + body) on stdout
http() {
    local method=$1 path=$2 body=${3:-}
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nContent-Length: %d\r\n\r\n%s' \
        "$method" "$path" "${#body}" "$body" >&3
    cat <&3
    exec 3<&- 3>&-
}

status_of() { head -1 <<<"$1" | cut -d' ' -f2; }
body_of() { tail -1 <<<"$1"; }

metric() { # metric JSON-FILE FIELD  (flat grep, fields are unique)
    grep -o "\"$2\":[0-9]*" "$1" | head -1 | cut -d: -f2
}

echo "== starting daemon on $ADDR (workers 1, queue-depth 1)"
# A held-open fifo keeps the daemon's stdin from hitting EOF (stdin EOF is
# the ctrl-c-equivalent drain trigger); the drain comes via the endpoint.
mkfifo "$TMP/stdin-hold"
sleep 1000 > "$TMP/stdin-hold" &
"$BIN" serve --addr "$ADDR" --workers 1 --queue-depth 1 < "$TMP/stdin-hold" &
SERVE_PID=$!
for _ in $(seq 50); do
    sleep 0.1
    if r=$(http GET /healthz 2>/dev/null) && [ "$(status_of "$r")" = 200 ]; then
        break
    fi
done
r=$(http GET /healthz)
[ "$(status_of "$r")" = 200 ] || { echo "healthz failed: $r"; exit 1; }
echo "== healthz ok"

echo "== compile matches offline CLI byte-for-byte"
body_of "$(http POST /compile '{"kernel":"fir","arch":"8x8","scale":"tiny"}')" \
    > "$TMP/served.json"
"$BIN" compile --dfg fir --arch 8x8 --scale tiny --json > "$TMP/cli.json"
cmp "$TMP/served.json" "$TMP/cli.json"
echo "== bit-identical"

echo "== replay is a cache hit, still identical"
body_of "$(http POST /compile '{"kernel":"fir","arch":"8x8","scale":"tiny"}')" \
    > "$TMP/replay.json"
cmp "$TMP/replay.json" "$TMP/cli.json"

echo "== lint endpoint answers"
r=$(http POST /lint '{"kernel":"fir","arch":"8x8","scale":"tiny"}')
[ "$(status_of "$r")" = 200 ] || { echo "lint failed: $r"; exit 1; }

echo "== deadline produces a 504 cancelled payload"
r=$(http POST /compile '{"kernel":"edn","scale":"scaled","baseline":true,"deadline_ms":1}')
[ "$(status_of "$r")" = 504 ] || { echo "expected 504: $r"; exit 1; }
grep -q '"error":"cancelled"' <<<"$r"

echo "== saturating the bounded queue (depth 1, 1 worker)"
SLOW='{"kernel":"edn","scale":"paper","baseline":true,"deadline_ms":15000}'
SLOW2='{"kernel":"edn","scale":"paper","baseline":true,"deadline_ms":15000,"max_ii":40}'
http POST /compile "$SLOW" > "$TMP/slow1" &
for _ in $(seq 100); do
    body_of "$(http GET /metrics)" > "$TMP/m.json"
    [ "$(metric "$TMP/m.json" in_flight)" = 1 ] && break
    sleep 0.05
done
[ "$(metric "$TMP/m.json" in_flight)" = 1 ] || { echo "never in flight"; exit 1; }
http POST /compile "$SLOW2" > "$TMP/slow2" &
for _ in $(seq 100); do
    body_of "$(http GET /metrics)" > "$TMP/m.json"
    [ "$(metric "$TMP/m.json" depth)" = 1 ] && break
    sleep 0.05
done
[ "$(metric "$TMP/m.json" depth)" = 1 ] || { echo "never queued"; exit 1; }
r=$(http POST /compile "$SLOW")
[ "$(status_of "$r")" = 503 ] || { echo "expected 503: $r"; exit 1; }
grep -q 'Retry-After: 1' <<<"$r"
echo "== shed with 503 + Retry-After"

echo "== metrics pass the SERVE lints"
body_of "$(http GET /metrics)" > "$TMP/metrics.json"
"$BIN" lint --report "$TMP/metrics.json"

echo "== graceful drain"
r=$(http POST /admin/shutdown)
[ "$(status_of "$r")" = 200 ] || { echo "shutdown refused: $r"; exit 1; }
wait "$SERVE_PID" || { echo "daemon exited non-zero"; exit 1; }
echo "== daemon drained cleanly; smoke passed"
