#!/usr/bin/env bash
# Load smoke for the serve layer (DESIGN.md §15), used by the CI
# `serve-load-smoke` job and runnable locally. Runs the deterministic
# `panorama bench --serve` harness — N concurrent clients over a real
# socket, a cold phase and then a fresh daemon on the same disk-cache
# directory — at worker counts 1 and 4, gated against the committed
# BENCH_PR8.json baseline (request conservation, 100% warm hit rate,
# disk-cache hits after the restart, byte-identical replay). The
# wall-clock-free stable projections of both runs must be byte-identical:
# the serving results may not depend on the worker count.
set -euo pipefail

BIN=${BIN:-target/release/panorama}
BASELINE=${BASELINE:-BENCH_PR8.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for workers in 1 4; do
    echo "== serve load bench: 4 clients x 48 requests, workers $workers"
    "$BIN" bench --serve --clients 4 --requests 48 --workers "$workers" \
        --cache-dir "$TMP/cache-w$workers" \
        --out "$TMP/serve-w$workers.json" \
        --stable-out "$TMP/stable-w$workers.json" \
        --check "$BASELINE"
    grep -q '"disk_survived_restart": true' "$TMP/stable-w$workers.json" \
        || { echo "workers $workers: warm phase served nothing from disk"; exit 1; }
    grep -q '"identical_replay": true' "$TMP/stable-w$workers.json" \
        || { echo "workers $workers: restart replay diverged"; exit 1; }
done

echo "== stable projections identical across worker counts"
cmp "$TMP/stable-w1.json" "$TMP/stable-w4.json"
echo "== serve load smoke passed"
