#!/usr/bin/env bash
# Exec smoke: drives `panorama exec` — the data-level differential
# oracle — over the full 12-kernel suite and checks the three properties
# CI cares about:
#
#   1. value fidelity — every kernel's SPR configware executes
#      value-equal to the DFG reference interpreter under all five
#      input-vector families (a divergence exits nonzero);
#   2. determinism — the same seed twice produces byte-identical
#      panorama-exec-v1 reports (no timestamps, no machine state);
#   3. report hygiene — every report passes the EXEC001-003 lints, and
#      the committed corpus (including any pinned exec-* encoder
#      reproducers) replays clean through the fuzz harness, whose exec
#      oracle re-executes every route-carrying mapping at value level.
#
# Usage: scripts/exec_smoke.sh [seed]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=./target/release/panorama
SEED="${1:-42}"
TMP="${TMPDIR:-/tmp}"

[ -x "$BIN" ] || { echo "build first: cargo build --release" >&2; exit 1; }

KERNELS="Edn IdctCols IdctRows Conv2d MatchedFilter MatrixMultiply \
Cordic KMeansClustering Fir JpegFdct JpegIdctFst InvertMat"

echo "== exec all 12 kernels twice (seed $SEED) + cmp + lint =="
for k in $KERNELS; do
    a="$TMP/exec-smoke-$k-a.json"
    b="$TMP/exec-smoke-$k-b.json"
    "$BIN" exec "$k" --scale tiny --seed "$SEED" --out "$a" >/dev/null
    "$BIN" exec "$k" --scale tiny --seed "$SEED" --out "$b" >/dev/null
    cmp "$a" "$b"
    "$BIN" lint --report "$a" >/dev/null
    echo "$k: deterministic, lints clean"
done

echo "== corpus replay through the exec oracle =="
# --cases 0 skips the sweep and replays only the committed corpus; the
# fuzz harness runs every case through all six oracles, so a pinned
# exec-* reproducer that regressed fails this step.
"$BIN" fuzz --cases 0 --corpus fuzz/corpus >/dev/null
echo "corpus replays clean (exec oracle included)"

echo "== one SAT-mapped execution (cross-backend spot check) =="
"$BIN" exec fir --scale tiny --arch 4x4 --mapper sat >/dev/null
echo "sat configware executes value-equal"

echo "exec smoke OK"
