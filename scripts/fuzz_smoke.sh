#!/usr/bin/env bash
# Fuzz smoke: drives the release binary through a short differential
# fuzzing sweep and checks the three properties CI cares about:
#
#   1. determinism — the same seed twice produces byte-identical
#      panorama-fuzz-v2 reports (no timestamps, no thread jitter);
#   2. cleanliness — the sweep and the committed corpus replay with zero
#      oracle failures (a failure here is a real toolchain bug or a fixed
#      bug resurfacing);
#   3. report hygiene — the report passes the FUZZ001-003 lints.
#
# Usage: scripts/fuzz_smoke.sh [seed] [cases]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=./target/release/panorama
SEED="${1:-42}"
CASES="${2:-60}"
OUT_A="${TMPDIR:-/tmp}/fuzz-smoke-a.json"
OUT_B="${TMPDIR:-/tmp}/fuzz-smoke-b.json"

[ -x "$BIN" ] || { echo "build first: cargo build --release" >&2; exit 1; }

echo "== fuzz sweep (seed $SEED, $CASES cases) + corpus replay =="
"$BIN" fuzz --seed "$SEED" --cases "$CASES" --max-nodes 24 \
    --corpus fuzz/corpus --out "$OUT_A"

echo "== determinism: same seed again, byte-compare =="
"$BIN" fuzz --seed "$SEED" --cases "$CASES" --max-nodes 24 \
    --corpus fuzz/corpus --out "$OUT_B"
cmp "$OUT_A" "$OUT_B"
echo "reports are byte-identical"

echo "== report lints (FUZZ001-003) =="
"$BIN" lint --report "$OUT_A"

echo "fuzz smoke OK"
