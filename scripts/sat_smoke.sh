#!/usr/bin/env bash
# SAT-backend smoke: drives the release binary through the 12-kernel
# suite with `--mapper sat` and checks the properties CI cares about:
#
#   1. coverage — every suite kernel maps, verifies and simulates with
#      the SAT backend on the 4x4/tiny preset;
#   2. determinism — compiling the whole suite twice produces
#      byte-identical panorama-compile-v1 documents and
#      panorama-sat-v1 attempt logs (the CDCL search has no wall-clock
#      or RNG state);
#   3. report hygiene — the attempt logs pass the SAT001-003 lints;
#   4. differential coverage — a short fuzz sweep plus the committed
#      corpus replay runs the SAT backend against all five oracles
#      with zero failures.
#
# Usage: scripts/sat_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=./target/release/panorama
TMP="${TMPDIR:-/tmp}"

[ -x "$BIN" ] || { echo "build first: cargo build --release" >&2; exit 1; }

KERNELS="edn idctcols idctrows conv2d matchedfilter matrixmultiply \
cordic kmeansclustering fir jpegfdct jpegidctfst invertmat"

echo "== 12-kernel suite with --mapper sat, twice, byte-compare =="
for run in a b; do
    : > "$TMP/sat-smoke-$run.json"
    for k in $KERNELS; do
        "$BIN" compile --dfg "$k" --arch 4x4 --scale tiny --mapper sat \
            --simulate 3 --json --sat-report "$TMP/sat-report-$run-$k.json" \
            >> "$TMP/sat-smoke-$run.json"
    done
done
cmp "$TMP/sat-smoke-a.json" "$TMP/sat-smoke-b.json"
for k in $KERNELS; do
    cmp "$TMP/sat-report-a-$k.json" "$TMP/sat-report-b-$k.json"
done
echo "compile documents and attempt logs are byte-identical"

echo "== attempt-log lints (SAT001-003) =="
for k in $KERNELS; do
    "$BIN" lint --report "$TMP/sat-report-a-$k.json"
done

echo "== portfolio determinism across thread counts =="
"$BIN" compile --dfg cordic --arch 4x4 --scale tiny --mapper portfolio \
    --threads 1 --json > "$TMP/sat-portfolio-t1.json"
"$BIN" compile --dfg cordic --arch 4x4 --scale tiny --mapper portfolio \
    --threads 4 --json > "$TMP/sat-portfolio-t4.json"
cmp "$TMP/sat-portfolio-t1.json" "$TMP/sat-portfolio-t4.json"
echo "portfolio documents are byte-identical at threads 1 and 4"

echo "== fuzz sweep + corpus replay (SAT vs all five oracles) =="
"$BIN" fuzz --seed 7 --cases 30 --max-nodes 20 \
    --corpus fuzz/corpus --out "$TMP/sat-fuzz.json"
"$BIN" lint --report "$TMP/sat-fuzz.json"

echo "sat smoke OK"
